"""Top-level entry points: ``repro.connect`` and ``repro.create``.

Callers should never need to touch :class:`~repro.mappings.extvp.ExtVPLayout`
or :class:`~repro.store.writer.DatasetWriter` directly:

.. code-block:: python

    import repro

    # Build a queryable session from triples, optionally persisting it:
    session = repro.create(triples, path="dataset/", num_partitions=4)

    # Later (or from another process), connect to the persisted dataset:
    with repro.connect("dataset/", execution_mode="process") as session:
        for binding in session.query(text):
            ...

Both factories accept the flat session knobs (``num_partitions``, ``engine``,
``vectorized_enabled``, ``execution_mode``, ...) or a prebuilt
:class:`~repro.core.config.SessionConfig` via ``config=``.
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

from repro.core.config import SessionConfig
from repro.core.session import S2RDFSession
from repro.rdf.graph import Graph
from repro.rdf.ntriples import parse_ntriples
from repro.rdf.triple import Triple


def connect(path: str, config: Optional[SessionConfig] = None, **knobs: object) -> S2RDFSession:
    """Open a persisted dataset directory as a query-ready session.

    Thin, intention-revealing wrapper over
    :meth:`~repro.core.session.S2RDFSession.open_dataset`; accepts the same
    flat knobs (or ``config=``).  Use as a context manager to release pools
    and file handles deterministically.
    """
    return S2RDFSession.open_dataset(path, config=config, **knobs)


def create(
    triples: Union[Graph, Iterable[Triple], str],
    path: Optional[str] = None,
    config: Optional[SessionConfig] = None,
    **knobs: object,
) -> S2RDFSession:
    """Build a session from RDF data, optionally persisting it to ``path``.

    ``triples`` may be a :class:`~repro.rdf.graph.Graph`, an iterable of
    :class:`~repro.rdf.triple.Triple`, or an N-Triples document string.
    With ``path`` the freshly built layout is saved as a columnar dataset
    (enabling appends, compaction, the workload journal on disk and process
    workers); without it the session stays in memory.
    """
    if isinstance(triples, Graph):
        graph = triples
    elif isinstance(triples, str):
        graph = parse_ntriples(triples)
    else:
        graph = Graph(list(triples))
    session = S2RDFSession.from_graph(graph, config=config, **knobs)
    if path is not None:
        session.save_dataset(path)
    return session
