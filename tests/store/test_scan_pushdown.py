"""Pushdown scans over the dataset store: projection, predicates, pruning,
and partition-aligned consumption by the parallel runtime."""

import pytest

from repro.core.session import S2RDFSession
from repro.engine.relation import Relation
from repro.engine.runtime.partitioner import HashPartitioner, key_partition_index
from repro.mappings.extvp import ExtVPLayout
from repro.rdf.graph import Graph
from repro.rdf.terms import IRI
from repro.rdf.triple import Triple
from repro.store.format import read_manifest
from repro.store.reader import open_dataset
from repro.store.writer import DatasetWriter


@pytest.fixture(scope="module")
def stored(tmp_path_factory):
    """A small graph persisted with 4 buckets, opened cold."""
    triples = [
        Triple(IRI(f"s{i}"), IRI("p"), IRI(f"o{i % 5}")) for i in range(40)
    ] + [Triple(IRI(f"s{i}"), IRI("q"), IRI(f"s{i + 1}")) for i in range(20)]
    layout = ExtVPLayout(selectivity_threshold=1.0)
    layout.build(Graph(triples, name="pushdown"))
    path = str(tmp_path_factory.mktemp("store") / "dataset")
    DatasetWriter(num_buckets=4).write(path, layout)
    restored, load_report, dataset = open_dataset(path)
    return layout, restored, dataset, path


class TestProjectionAndPredicates:
    def test_full_read_matches_in_memory(self, stored):
        layout, restored, _, _ = stored
        for name in layout.catalog.table_names():
            assert restored.catalog.table(name) == layout.catalog.table(name), name

    def test_projection_pushdown(self, stored):
        _, restored, _, _ = stored
        scan = restored.catalog.scan("vp_p", columns=["o"])
        assert scan.relation.columns == ("o",)
        assert scan.segments_scanned > 0

    def test_equality_pushdown_matches_select_eq(self, stored):
        layout, restored, _, _ = stored
        value = IRI("o3")
        expected = layout.catalog.table("vp_p").select_eq({"o": value})
        scan = restored.catalog.scan("vp_p", columns=["s", "o"], conditions={"o": value})
        assert sorted(map(repr, scan.relation.rows)) == sorted(map(repr, expected.rows))

    def test_unknown_term_prunes_everything(self, stored):
        _, restored, _, _ = stored
        scan = restored.catalog.scan("vp_p", conditions={"o": IRI("never-seen")})
        assert len(scan.relation) == 0
        assert scan.segments_scanned == 0
        assert scan.segments_pruned > 0
        assert scan.rows_scanned == 0


class TestPruning:
    def test_bucket_pruning_on_partition_key(self, stored):
        """A bound subject hashes to one bucket; the others are never read."""
        _, restored, dataset, _ = stored
        subject = IRI("s7")
        entry = dataset.manifest.tables["vp_p"]
        expected_bucket = key_partition_index((subject,), entry.num_partitions)
        scan = restored.catalog.scan("vp_p", conditions={"s": subject})
        assert [row[0] for row in scan.relation.rows] == [subject]
        read_partitions = scan.segments_scanned // len(("s", "o"))
        assert read_partitions == 1
        assert scan.rows_scanned == entry.partitions[expected_bucket].row_count

    def test_zone_map_pruning(self, stored):
        """An id outside a segment's [min, max] skips the segment unread."""
        _, restored, dataset, _ = stored
        found = None
        for name, entry in dataset.manifest.tables.items():
            if entry.num_partitions < 2:
                continue
            for column in entry.columns:
                if column in entry.partition_keys:
                    continue
                zones = [p.zones[column] for p in entry.partitions if p.row_count > 0]
                if len(zones) < 2:
                    continue
                target = max(zone.max_id for zone in zones)
                if any(not zone.may_contain(target) for zone in zones):
                    found = (name, column, target)
                    break
            if found:
                break
        assert found is not None, "expected at least one zone-map-prunable segment"
        name, column, target = found
        term = dataset.dictionary.decode(target)
        scan = restored.catalog.scan(name, conditions={column: term})
        assert scan.segments_pruned > 0
        assert term in scan.relation.column_values(column)

    def test_scan_metrics_reach_query_results(self, stored):
        _, restored, _, path = stored
        session = S2RDFSession.open_dataset(path)
        try:
            result = session.query("SELECT ?o WHERE { <s7> <p> ?o }")
            assert len(result) == 1
            assert result.metrics.store_segments_scanned > 0
            assert result.metrics.store_segments_pruned > 0
        finally:
            session.close()


class TestPartitionAlignment:
    def test_scan_output_carries_partitioning(self, stored):
        _, restored, dataset, _ = stored
        scan = restored.catalog.scan("vp_p")
        tag = scan.relation.partitioning
        assert tag is not None
        assert tag.keys == ("s",)
        assert tag.num_partitions == dataset.manifest.num_buckets
        assert sum(tag.counts) == len(scan.relation)

    def test_stored_buckets_match_hash_partitioner(self, stored):
        """Slicing the tagged scan equals re-partitioning with HashPartitioner."""
        _, restored, _, _ = stored
        scan = restored.catalog.scan("vp_p")
        relation = scan.relation
        partitioner = HashPartitioner(relation.partitioning.num_partitions)
        rehashed = partitioner.partition(Relation(relation.columns, relation.rows), ["s"])
        start = 0
        for count, expected in zip(relation.partitioning.counts, rehashed):
            chunk = Relation(relation.columns, relation.rows[start : start + count])
            assert chunk == expected
            start += count

    def test_aligned_joins_skip_shuffle_bytes(self, stored):
        _, _, _, path = stored
        session = S2RDFSession.open_dataset(path, broadcast_threshold=0)
        try:
            result = session.query("SELECT * WHERE { ?x <q> ?y . ?x <p> ?o }")
            assert len(result) > 0
            assert result.metrics.partition_aligned_inputs > 0
        finally:
            session.close()

    def test_partitioning_survives_project_and_rename(self, stored):
        _, restored, _, _ = stored
        relation = restored.catalog.scan("vp_p").relation
        renamed = relation.rename({"s": "x", "o": "y"})
        assert renamed.partitioning.keys == ("x",)
        projected = renamed.project(["x"])
        assert projected.partitioning is not None
        dropped = renamed.project(["y"])
        assert dropped.partitioning is None
