"""Unit tests for the dataset store's on-disk format primitives."""

import os

import pytest

from repro.engine.storage import NULL_ID, ZoneMap, decode_id_column, encode_id_column
from repro.rdf.terms import IRI, Literal
from repro.store.format import (
    DatasetFormatError,
    StoredTermDictionary,
    read_manifest,
    read_segment_file,
    write_dictionary,
    write_segment_file,
)


class TestIdColumnCodec:
    @pytest.mark.parametrize(
        "ids",
        [
            [],
            [0],
            [5, 5, 5, 5],
            [1, 2, 3, 2, 1],
            [NULL_ID, 0, NULL_ID, NULL_ID],
            list(range(1000)),
            [7] * 1000,
        ],
    )
    def test_roundtrip(self, ids):
        assert decode_id_column(encode_id_column(ids)) == ids

    def test_rle_compresses_runs(self):
        repeated = encode_id_column([3] * 10_000)
        distinct = encode_id_column(list(range(10_000)))
        assert len(repeated) < len(distinct) / 100

    def test_truncated_page_rejected(self):
        page = encode_id_column([1, 2, 3])
        with pytest.raises(ValueError):
            decode_id_column(page[:-1])
        with pytest.raises(ValueError):
            decode_id_column(b"\x01")


class TestZoneMap:
    def test_from_ids_bounds_and_counts(self):
        zone = ZoneMap.from_ids([4, 2, 9, 2, NULL_ID])
        assert zone.min_id == 2 and zone.max_id == 9
        assert zone.row_count == 5
        assert zone.distinct_count == 3
        assert zone.null_count == 1

    def test_may_contain(self):
        zone = ZoneMap.from_ids([5, 7, 9])
        assert zone.may_contain(5) and zone.may_contain(8)
        assert not zone.may_contain(4) and not zone.may_contain(10)
        assert not zone.may_contain(NULL_ID)

    def test_null_only_segment(self):
        zone = ZoneMap.from_ids([NULL_ID, NULL_ID])
        assert zone.may_contain(NULL_ID)
        assert not zone.may_contain(0)

    def test_empty_segment_contains_nothing(self):
        zone = ZoneMap.from_ids([])
        assert not zone.may_contain(0)
        assert not zone.may_contain(NULL_ID)

    def test_json_roundtrip(self):
        zone = ZoneMap.from_ids([1, 2, NULL_ID])
        assert ZoneMap.from_json(zone.to_json()) == zone


class TestSegmentFile:
    def test_roundtrip_and_projection(self, tmp_path):
        path = str(tmp_path / "part-00000.seg")
        pages = [("s", encode_id_column([1, 1, 2])), ("o", encode_id_column([3, 4, 5]))]
        size = write_segment_file(path, pages)
        assert size == os.path.getsize(path)
        assert read_segment_file(path) == {"s": [1, 1, 2], "o": [3, 4, 5]}
        # Projection pushdown: only the requested page is decoded.
        assert read_segment_file(path, columns=["o"]) == {"o": [3, 4, 5]}

    def test_missing_column_rejected(self, tmp_path):
        path = str(tmp_path / "part-00000.seg")
        write_segment_file(path, [("s", encode_id_column([1]))])
        with pytest.raises(DatasetFormatError):
            read_segment_file(path, columns=["nope"])

    def test_non_segment_file_rejected(self, tmp_path):
        path = str(tmp_path / "bogus.seg")
        with open(path, "wb") as handle:
            handle.write(b"not a segment")
        with pytest.raises(DatasetFormatError):
            read_segment_file(path)


class TestStoredDictionary:
    def test_roundtrip_including_literals(self, tmp_path):
        terms = [
            IRI("http://example.org/s"),
            Literal("plain"),
            Literal("5", datatype="http://www.w3.org/2001/XMLSchema#integer"),
            Literal("hi", language="en"),
            Literal('quoted "text"\nwith newline'),
        ]
        write_dictionary(str(tmp_path), terms)
        stored = StoredTermDictionary.open(str(tmp_path))
        assert len(stored) == len(terms)
        for index, term in enumerate(terms):
            assert stored.decode(index) == term
            assert stored.lookup(term) == index

    def test_carriage_returns_do_not_shift_ids(self, tmp_path):
        """Regression: \\r (and other line separators) must not split a term."""
        terms = [
            Literal("line1\rline2"),
            Literal("u2028 separator"),
            Literal("nel\x85char"),
            IRI("after"),
        ]
        write_dictionary(str(tmp_path), terms)
        stored = StoredTermDictionary.open(str(tmp_path), expected_size=len(terms))
        for index, term in enumerate(terms):
            assert stored.decode(index) == term

    def test_xsd_string_datatype_survives_roundtrip(self, tmp_path):
        """Regression: n3() suppresses ^^xsd:string; the store must not."""
        typed = Literal("5", datatype="http://www.w3.org/2001/XMLSchema#string")
        plain = Literal("5")
        write_dictionary(str(tmp_path), [typed, plain])
        stored = StoredTermDictionary.open(str(tmp_path))
        assert stored.decode(0) == typed
        assert stored.decode(1) == plain
        assert stored.lookup(typed) == 0
        assert stored.lookup(plain) == 1

    def test_size_mismatch_detected(self, tmp_path):
        write_dictionary(str(tmp_path), [IRI("a"), IRI("b")])
        with pytest.raises(DatasetFormatError):
            StoredTermDictionary.open(str(tmp_path), expected_size=3)

    def test_unknown_lookups(self, tmp_path):
        write_dictionary(str(tmp_path), [IRI("a")])
        stored = StoredTermDictionary.open(str(tmp_path))
        assert stored.lookup(IRI("missing")) is None
        with pytest.raises(KeyError):
            stored.decode(1)
        with pytest.raises(KeyError):
            stored.decode(-1)


class TestManifest:
    def test_missing_manifest_rejected(self, tmp_path):
        with pytest.raises(DatasetFormatError):
            read_manifest(str(tmp_path))
