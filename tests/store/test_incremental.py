"""Incremental dataset updates: delta segments, append-only dictionary,
incremental ExtVP maintenance, zone-map pruning over deltas, compaction.

The load-bearing invariant throughout: a dataset grown with
``append_triples`` must be indistinguishable — by bag-equality of every
query and every table — from one rebuilt from scratch on the union graph,
both before and after ``compact()``.
"""

import os

import pytest

from repro.core.session import S2RDFSession
from repro.engine.runtime.partitioner import key_partition_index
from repro.rdf.graph import Graph
from repro.rdf.terms import IRI
from repro.rdf.triple import Triple
from repro.store.format import (
    StoredTermDictionary,
    dictionary_path,
    encode_term_line,
    manifest_path,
    read_manifest,
)
from repro.store.writer import DatasetAppender, DatasetCompactor


def bag(relation):
    return sorted(map(repr, relation.rows))


def base_triples():
    return [Triple(IRI(f"s{i}"), IRI("p"), IRI(f"o{i % 5}")) for i in range(40)] + [
        Triple(IRI(f"s{i}"), IRI("q"), IRI(f"s{i + 1}")) for i in range(20)
    ]


def update_triples():
    """Updates that exercise every maintenance path: new rows for existing
    predicates (new and old subjects/objects), a brand-new predicate, and a
    correlation that only exists after the append."""
    return (
        [Triple(IRI(f"s{i}"), IRI("p"), IRI("oNEW")) for i in range(40, 50)]
        + [Triple(IRI(f"s{i}"), IRI("q"), IRI(f"s{i + 1}")) for i in range(20, 45)]
        + [Triple(IRI("x1"), IRI("r"), IRI("s3")), Triple(IRI("x2"), IRI("r"), IRI("x1"))]
    )


QUERIES = [
    "SELECT * WHERE { ?x <q> ?y . ?y <p> ?o }",
    "SELECT * WHERE { ?x <q> ?y . ?y <q> ?z }",
    "SELECT ?o WHERE { <s42> <p> ?o }",
    "SELECT * WHERE { ?a <r> ?b . ?b <p> ?o }",
    "SELECT * WHERE { ?x <p> ?o . OPTIONAL { ?x <q> ?y } }",
    "SELECT * WHERE { ?s ?anypred ?o . ?o <p> ?v }",
]


@pytest.fixture()
def dataset_path(tmp_path):
    session = S2RDFSession.from_graph(Graph(base_triples()), num_partitions=4)
    path = str(tmp_path / "dataset")
    session.save_dataset(path)
    session.close()
    return path


@pytest.fixture()
def rebuilt():
    """Ground truth: a session rebuilt from the full union graph."""
    session = S2RDFSession.from_graph(Graph(base_triples() + update_triples()), num_partitions=4)
    yield session
    session.close()


class TestAppend:
    def test_queries_bag_equal_to_rebuild(self, dataset_path, rebuilt):
        session = S2RDFSession.open_dataset(dataset_path)
        try:
            session.append_triples(update_triples())
            for query in QUERIES:
                assert bag(session.query(query).relation) == bag(rebuilt.query(query).relation), query
        finally:
            session.close()

    def test_reopen_after_append_is_equivalent(self, dataset_path, rebuilt):
        session = S2RDFSession.open_dataset(dataset_path)
        session.append_triples(update_triples())
        session.close()
        cold = S2RDFSession.open_dataset(dataset_path)
        try:
            for query in QUERIES:
                assert bag(cold.query(query).relation) == bag(rebuilt.query(query).relation), query
        finally:
            cold.close()

    def test_every_table_bag_equal_to_rebuild(self, dataset_path, rebuilt):
        """Stored base+delta table contents match the rebuilt relations."""
        session = S2RDFSession.open_dataset(dataset_path)
        try:
            session.append_triples(update_triples())
            rebuilt_catalog = rebuilt.layout.catalog
            for name in session.layout.catalog.table_names():
                if name in rebuilt_catalog:
                    assert bag(session.layout.catalog.table(name)) == bag(
                        rebuilt_catalog.table(name)
                    ), name
        finally:
            session.close()

    def test_extvp_statistics_match_rebuild(self, dataset_path, rebuilt):
        """Row counts of every correlation pair are maintained exactly.

        (Materialisation flags may legitimately differ: appends never
        re-decide them, a rebuild does.)
        """
        session = S2RDFSession.open_dataset(dataset_path)
        try:
            session.append_triples(update_triples())
            for key, info in rebuilt.layout.statistics.tables.items():
                incremental = session.layout.statistics.tables.get(key)
                assert incremental is not None, key
                assert incremental.row_count == info.row_count, key
                assert incremental.vp_row_count == info.vp_row_count, key
        finally:
            session.close()

    def test_extvp_distinct_counts_exact_after_append(self, dataset_path):
        """Appends keep the manifest's ExtVP distinct counts *exact* — equal
        to a recomputation over the full base+delta table — not merely a
        bounded estimate (the pre-maintenance behaviour)."""
        session = S2RDFSession.open_dataset(dataset_path)
        try:
            updates = update_triples()
            session.append_triples(updates[:15])
            session.append_triples(updates[15:])
            manifest = read_manifest(dataset_path)
            delta_tables_checked = 0
            for name, entry in manifest.tables.items():
                if not name.startswith("extvp_"):
                    continue
                relation = session.layout.catalog.table(name)
                assert entry.distinct_subjects == len({row[0] for row in relation.rows}), name
                assert entry.distinct_objects == len({row[1] for row in relation.rows}), name
                if entry.has_deltas:
                    delta_tables_checked += 1
            assert delta_tables_checked > 0  # the appends really delta'd ExtVP
        finally:
            session.close()

    def test_no_segment_rewritten_and_deltas_recorded(self, dataset_path):
        manifest_before = read_manifest(dataset_path)
        mtimes = {}
        for entry in manifest_before.tables.values():
            for partition in entry.partitions:
                file_path = os.path.join(dataset_path, *partition.file.split("/"))
                mtimes[partition.file] = os.stat(file_path).st_mtime_ns
        report = DatasetAppender(dataset_path).append(update_triples())
        assert report.triples_appended == len(update_triples())
        assert report.delta_segments > 0
        assert report.new_predicates == 1
        manifest = read_manifest(dataset_path)
        assert manifest.append_epoch == 1
        assert any(entry.has_deltas for entry in manifest.tables.values())
        for entry in manifest.tables.values():
            assert entry.row_count == entry.base_row_count() + entry.delta_row_count(), entry.name
        for file, mtime in mtimes.items():
            file_path = os.path.join(dataset_path, *file.split("/"))
            assert os.stat(file_path).st_mtime_ns == mtime, f"{file} was rewritten"

    def test_duplicate_triples_are_skipped(self, dataset_path):
        report = DatasetAppender(dataset_path).append(base_triples())
        assert report.triples_appended == 0
        assert report.duplicate_triples == len(base_triples())
        assert report.delta_segments == 0
        assert read_manifest(dataset_path).append_epoch == 0  # no-op: nothing committed

    def test_repeated_appends_stack(self, dataset_path):
        updates = update_triples()
        session = S2RDFSession.open_dataset(dataset_path)
        try:
            session.append_triples(updates[:10])
            session.append_triples(updates[10:])
            truth = S2RDFSession.from_graph(Graph(base_triples() + updates), num_partitions=4)
            for query in QUERIES:
                assert bag(session.query(query).relation) == bag(truth.query(query).relation)
            truth.close()
            assert read_manifest(dataset_path).append_epoch == 2
        finally:
            session.close()

    def test_delta_buckets_align_with_hash_partitioner(self, dataset_path):
        DatasetAppender(dataset_path).append(update_triples())
        manifest = read_manifest(dataset_path)
        dictionary = StoredTermDictionary.open(dataset_path, expected_size=manifest.dictionary_size)
        entry = manifest.tables["vp_p"]
        assert entry.has_deltas
        session = S2RDFSession.open_dataset(dataset_path)
        try:
            scan = session.layout.catalog.scan("vp_p")
            tag = scan.relation.partitioning
            assert tag is not None and tag.keys == ("s",)
            assert sum(tag.counts) == len(scan.relation) == entry.row_count
            # Every row of bucket i must hash to i — base and delta rows alike.
            start = 0
            for bucket, count in enumerate(tag.counts):
                for row in scan.relation.rows[start : start + count]:
                    assert key_partition_index((row[0],), entry.num_partitions) == bucket
                start += count
        finally:
            session.close()

    def test_append_requires_persisted_session(self, small_dataset):
        session = S2RDFSession.from_graph(small_dataset.graph)
        try:
            with pytest.raises(RuntimeError, match="save_dataset"):
                session.append_triples(update_triples())
        finally:
            session.close()

    def test_new_predicate_gets_collision_free_table(self, tmp_path):
        """A new predicate whose key collides with an existing table name."""
        session = S2RDFSession.from_graph(
            Graph([Triple(IRI("a"), IRI("http://one.example/name"), IRI("b"))])
        )
        path = str(tmp_path / "dataset")
        session.save_dataset(path)
        session.close()
        cold = S2RDFSession.open_dataset(path)
        try:
            cold.append_triples([Triple(IRI("c"), IRI("http://two.example/name"), IRI("d"))])
            manifest = read_manifest(path)
            names = [
                info["table"] for info in manifest.vp_tables.values()
            ]
            assert len(set(names)) == 2  # no clobbering
            result = cold.query("SELECT * WHERE { ?x <http://two.example/name> ?y }")
            assert len(result) == 1
        finally:
            cold.close()


class TestDictionaryAppendSemantics:
    def test_ids_stable_across_appends(self, dataset_path):
        before = read_manifest(dataset_path)
        old_dictionary = StoredTermDictionary.open(dataset_path, expected_size=before.dictionary_size)
        old_ids = {old_dictionary.decode(i): i for i in range(len(old_dictionary))}
        DatasetAppender(dataset_path).append(update_triples())
        after = read_manifest(dataset_path)
        assert after.dictionary_size > before.dictionary_size
        new_dictionary = StoredTermDictionary.open(dataset_path, expected_size=after.dictionary_size)
        for term, term_id in old_ids.items():
            assert new_dictionary.decode(term_id) == term
            assert new_dictionary.lookup(term) == term_id
        # Appended terms occupy the new tail of the id range only.
        assert new_dictionary.lookup(IRI("oNEW")) is not None
        assert new_dictionary.lookup(IRI("oNEW")) >= before.dictionary_size

    def test_decode_rejects_ids_beyond_committed_range(self, dataset_path):
        manifest = read_manifest(dataset_path)
        dictionary = StoredTermDictionary.open(dataset_path, expected_size=manifest.dictionary_size)
        with pytest.raises(KeyError):
            dictionary.decode(manifest.dictionary_size)
        with pytest.raises(KeyError):
            dictionary.decode(-1)

    def test_uncommitted_trailing_lines_are_ignored(self, dataset_path):
        """A crash between dictionary append and manifest rewrite leaves
        trailing lines; the manifest size is the commit point."""
        manifest = read_manifest(dataset_path)
        with open(dictionary_path(dataset_path), "a", encoding="ascii", newline="\n") as handle:
            handle.write(encode_term_line(IRI("uncommitted-term")) + "\n")
        dictionary = StoredTermDictionary.open(dataset_path, expected_size=manifest.dictionary_size)
        assert len(dictionary) == manifest.dictionary_size
        assert dictionary.lookup(IRI("uncommitted-term")) is None
        with pytest.raises(KeyError):
            dictionary.decode(manifest.dictionary_size)

    def test_reopen_after_append_roundtrips(self, dataset_path):
        DatasetAppender(dataset_path).append(update_triples())
        manifest = read_manifest(dataset_path)
        dictionary = StoredTermDictionary.open(dataset_path, expected_size=manifest.dictionary_size)
        for term_id in range(len(dictionary)):
            term = dictionary.decode(term_id)
            assert dictionary.lookup(term) == term_id

    def test_manifest_commit_is_atomic_swap(self, dataset_path):
        """The manifest is written to a temp file and swapped in — no temp
        residue, and the committed manifest always parses."""
        DatasetAppender(dataset_path).append(update_triples())
        assert not os.path.exists(manifest_path(dataset_path) + ".tmp")
        assert read_manifest(dataset_path).append_epoch == 1

    def test_retried_append_repairs_orphan_lines(self, dataset_path, rebuilt):
        """A retry after a crash mid-append must truncate the crashed
        attempt's orphan dictionary lines, or the retry's ids would point at
        the wrong line numbers."""
        manifest = read_manifest(dataset_path)
        with open(dictionary_path(dataset_path), "a", encoding="ascii", newline="\n") as handle:
            for i in range(5):
                handle.write(encode_term_line(IRI(f"crashed-orphan-{i}")) + "\n")
        DatasetAppender(dataset_path).append(update_triples())
        after = read_manifest(dataset_path)
        dictionary = StoredTermDictionary.open(dataset_path, expected_size=after.dictionary_size)
        assert dictionary.raw_line_count == after.dictionary_size  # orphans gone
        assert dictionary.lookup(IRI("crashed-orphan-0")) is None
        session = S2RDFSession.open_dataset(dataset_path)
        try:
            for query in QUERIES:
                assert bag(session.query(query).relation) == bag(rebuilt.query(query).relation), query
        finally:
            session.close()


class TestDeltaZonePruning:
    def test_all_base_segments_pruned_deltas_still_scanned(self, dataset_path):
        """An equality predicate on a term that only exists in deltas: every
        base segment is zone-map-pruned, yet the matching delta rows are
        found, and scanned + pruned reconciles with the total segment count."""
        DatasetAppender(dataset_path).append(update_triples())
        session = S2RDFSession.open_dataset(dataset_path)
        try:
            manifest = read_manifest(dataset_path)
            entry = manifest.tables["vp_p"]
            # "oNEW" entered the dictionary during the append, so its id is
            # beyond every base segment's zone-map range by construction.
            scan = session.layout.catalog.scan("vp_p", conditions={"o": IRI("oNEW")})
            assert len(scan.relation) == 10
            assert {row[1] for row in scan.relation.rows} == {IRI("oNEW")}
            columns = len(entry.columns)
            assert scan.segments_pruned >= len(entry.partitions) * columns
            assert scan.segments_scanned > 0
            assert scan.segments_scanned + scan.segments_pruned == entry.segment_count() * columns
            # No base segment was read: only delta rows entered the scan.
            assert scan.rows_scanned <= entry.delta_row_count()
        finally:
            session.close()

    def test_metrics_reconcile_through_query(self, dataset_path):
        DatasetAppender(dataset_path).append(update_triples())
        session = S2RDFSession.open_dataset(dataset_path)
        try:
            result = session.query('SELECT ?s WHERE { ?s <p> <oNEW> }')
            assert len(result) == 10
            assert result.metrics.store_segments_pruned > 0
            assert result.metrics.store_segments_scanned > 0
        finally:
            session.close()

    def test_bucket_pruning_applies_to_deltas(self, dataset_path):
        """A bound subject prunes delta segments of other buckets too."""
        DatasetAppender(dataset_path).append(update_triples())
        session = S2RDFSession.open_dataset(dataset_path)
        try:
            manifest = read_manifest(dataset_path)
            entry = manifest.tables["vp_q"]
            subject = IRI("s30")  # appended row: s30 -q-> s31
            target = key_partition_index((subject,), entry.num_partitions)
            scan = session.layout.catalog.scan("vp_q", conditions={"s": subject})
            assert [row[0] for row in scan.relation.rows] == [subject]
            scanned_rows_in_target = sum(
                segment.row_count for segment in entry.segments_for_bucket(target)
            )
            assert scan.rows_scanned <= scanned_rows_in_target
        finally:
            session.close()


class TestCompaction:
    def test_compaction_preserves_results_with_fewer_segments(self, dataset_path, rebuilt):
        session = S2RDFSession.open_dataset(dataset_path)
        try:
            session.append_triples(update_triples())
            before = {
                query: session.query(query).metrics.store_segments_scanned for query in QUERIES
            }
            manifest = read_manifest(dataset_path)
            segments_with_deltas = sum(e.segment_count() for e in manifest.tables.values())
            report = session.compact()
            assert report.tables_compacted > 0
            assert report.segments_after < report.segments_before == segments_with_deltas
            manifest = read_manifest(dataset_path)
            assert not any(entry.has_deltas for entry in manifest.tables.values())
            for query in QUERIES:
                result = session.query(query)
                assert bag(result.relation) == bag(rebuilt.query(query).relation), query
                assert result.metrics.store_segments_scanned <= before[query], query
            # The table-5-style merged-scan query must touch strictly fewer
            # segments once its deltas are folded in.
            merged_scan_query = QUERIES[0]
            assert (
                session.query(merged_scan_query).metrics.store_segments_scanned
                < before[merged_scan_query]
            )
        finally:
            session.close()

    def test_compacted_dataset_reopens_equivalent(self, dataset_path, rebuilt):
        session = S2RDFSession.open_dataset(dataset_path)
        session.append_triples(update_triples())
        session.compact()
        session.close()
        cold = S2RDFSession.open_dataset(dataset_path)
        try:
            for query in QUERIES:
                assert bag(cold.query(query).relation) == bag(rebuilt.query(query).relation), query
        finally:
            cold.close()

    def test_threshold_bounds_compaction(self, dataset_path):
        DatasetAppender(dataset_path).append(update_triples())
        manifest = read_manifest(dataset_path)
        max_deltas = max(len(entry.deltas) for entry in manifest.tables.values())
        report = DatasetCompactor(compaction_threshold=max_deltas + 1).compact(dataset_path)
        assert report.tables_compacted == 0
        assert report.tables_skipped > 0
        assert report.segments_after == report.segments_before

    def test_compaction_without_deltas_is_a_noop(self, dataset_path):
        report = DatasetCompactor().compact(dataset_path)
        assert report.tables_compacted == 0
        assert report.delta_rows_merged == 0

    def test_compaction_threshold_validation(self):
        with pytest.raises(ValueError):
            DatasetCompactor(compaction_threshold=0)

    def test_delta_only_table_gains_base_partitions(self, dataset_path):
        DatasetAppender(dataset_path).append(update_triples())
        manifest = read_manifest(dataset_path)
        assert manifest.tables["vp_r"].partitions == []  # delta-only so far
        DatasetCompactor().compact(dataset_path)
        manifest = read_manifest(dataset_path)
        entry = manifest.tables["vp_r"]
        assert len(entry.partitions) == entry.num_partitions
        assert not entry.has_deltas
        session = S2RDFSession.open_dataset(dataset_path)
        try:
            assert len(session.layout.catalog.table("vp_r")) == 2
        finally:
            session.close()

    def test_compaction_writes_new_files_then_deletes_old(self, dataset_path):
        """The previous manifest stays valid until the new one commits:
        merged segments land under new generation-stamped names, and the
        superseded base + delta files are gone only after the commit."""
        import pathlib

        DatasetAppender(dataset_path).append(update_triples())
        before = read_manifest(dataset_path)
        old_files = {
            segment.file
            for entry in before.tables.values()
            if entry.has_deltas
            for segment in list(entry.partitions) + list(entry.deltas)
        }
        DatasetCompactor().compact(dataset_path)
        after = read_manifest(dataset_path)
        assert after.append_epoch == before.append_epoch + 1
        new_files = {
            segment.file for entry in after.tables.values() for segment in entry.partitions
        }
        assert not (new_files & old_files)  # nothing overwritten in place
        for file in old_files:
            assert not (pathlib.Path(dataset_path) / file).exists(), file

    def test_zone_maps_tightened_after_compaction(self, dataset_path):
        """Merged base segments carry zone maps recomputed from actual ids."""
        DatasetAppender(dataset_path).append(update_triples())
        DatasetCompactor().compact(dataset_path)
        manifest = read_manifest(dataset_path)
        dictionary = StoredTermDictionary.open(dataset_path, expected_size=manifest.dictionary_size)
        for entry in manifest.tables.values():
            for partition in entry.partitions:
                for column, zone in partition.zones.items():
                    assert zone.row_count == partition.row_count
                    if zone.row_count and zone.min_id >= 0:
                        assert zone.min_id <= zone.max_id < manifest.dictionary_size


class TestAppendCost:
    """The manifest's persisted per-predicate value sets make appends
    O(batch): dedup, VP statistics and ExtVP pair evaluation run against the
    sets, and base/delta segments are read only when a value-set
    intersection proves an old row can actually qualify."""

    @staticmethod
    def _count_segment_reads(monkeypatch):
        import repro.store.writer as writer_mod

        calls = []
        real = writer_mod.read_segment_file

        def counting(path, columns):
            calls.append(path)
            return real(path, columns)

        monkeypatch.setattr(writer_mod, "read_segment_file", counting)
        return calls

    def test_fresh_term_append_reads_no_base_segments(self, dataset_path, monkeypatch):
        """A small append of fresh subjects/objects must not read a single
        stored segment — the whole maintenance pass runs on the manifest's
        value sets."""
        calls = self._count_segment_reads(monkeypatch)
        report = DatasetAppender(dataset_path).append(
            [
                Triple(IRI("fresh-a"), IRI("p"), IRI("fresh-b")),
                Triple(IRI("fresh-c"), IRI("q"), IRI("fresh-d")),
            ]
        )
        assert report.triples_appended == 2
        assert calls == [], f"append read base segments: {calls}"
        # The appended rows are visible and correct on reopen.
        session = S2RDFSession.open_dataset(dataset_path)
        result = session.query("SELECT ?o WHERE { <fresh-a> <p> ?o }")
        assert bag(result.relation) == [repr((IRI("fresh-b"),))]
        session.close()

    def test_overlapping_append_reads_only_when_sets_intersect(
        self, dataset_path, monkeypatch
    ):
        """Old-row revival (a value newly added to VP_second's join column)
        legitimately needs stored rows — but only of the VP tables whose
        value sets actually intersect the additions."""
        calls = self._count_segment_reads(monkeypatch)
        # <r> is new; its object s3 already occurs as a subject of <p>/<q>,
        # so old <p>/<q> rows are revived into extvp tables against <r>.
        report = DatasetAppender(dataset_path).append(
            [Triple(IRI("x1"), IRI("r"), IRI("s3"))]
        )
        assert report.triples_appended == 1
        read_tables = {path.split(os.sep)[-2] for path in calls}
        assert read_tables <= {"vp_p", "vp_q", "triples"}, read_tables

    def test_duplicate_detection_via_value_set_prefilter(self, dataset_path, monkeypatch):
        """An exact duplicate passes the subject/object prefilter and forces
        one row-set read of its own VP table; a pair of *known* ids that was
        never a row is rejected the same way."""
        calls = self._count_segment_reads(monkeypatch)
        report = DatasetAppender(dataset_path).append(
            [Triple(IRI("s0"), IRI("p"), IRI("o0"))]  # row already stored
        )
        assert report.triples_appended == 0
        assert report.duplicate_triples == 1
        read_tables = {path.split(os.sep)[-2] for path in calls}
        assert read_tables == {"vp_p"}, read_tables

    def test_value_sets_persisted_and_updated(self, dataset_path):
        manifest = read_manifest(dataset_path)
        assert set(manifest.vp_value_sets) == set(manifest.vp_tables)
        before = manifest.vp_value_sets["<p>"]
        DatasetAppender(dataset_path).append(
            [Triple(IRI("fresh-a"), IRI("p"), IRI("fresh-b"))]
        )
        after = read_manifest(dataset_path).vp_value_sets["<p>"]
        assert len(after["s"]) == len(before["s"]) + 1
        assert len(after["o"]) == len(before["o"]) + 1

    def test_legacy_manifest_upgraded_on_first_append(self, dataset_path, monkeypatch):
        """A dataset persisted before value sets existed pays one upgrade
        read; the sets are committed with that append and the next
        fresh-term append is O(batch) again."""
        import json

        with open(manifest_path(dataset_path), "r", encoding="utf-8") as handle:
            data = json.load(handle)
        data.pop("vp_value_sets", None)
        with open(manifest_path(dataset_path), "w", encoding="utf-8") as handle:
            json.dump(data, handle)
        assert read_manifest(dataset_path).vp_value_sets == {}

        calls = self._count_segment_reads(monkeypatch)
        DatasetAppender(dataset_path).append(
            [Triple(IRI("fresh-a"), IRI("p"), IRI("fresh-b"))]
        )
        assert calls, "legacy upgrade should read the VP tables once"
        upgraded = read_manifest(dataset_path).vp_value_sets
        assert set(upgraded) == set(read_manifest(dataset_path).vp_tables)

        calls.clear()
        DatasetAppender(dataset_path).append(
            [Triple(IRI("fresh-x"), IRI("p"), IRI("fresh-y"))]
        )
        assert calls == [], f"post-upgrade append read segments: {calls}"
