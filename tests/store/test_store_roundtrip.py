"""Acceptance tests: save_dataset / open_dataset roundtrip equivalence.

For the WatDiv test graph, a session opened cold from the dataset store must
answer the Table 4 Basic queries identically to the in-memory session it was
saved from — without parsing N-Triples or rebuilding ExtVP (asserted via
instrumentation), and with all statistics restored from the manifest.
"""

import pathlib

import pytest

import repro.rdf.ntriples as ntriples_module
from repro.core.session import S2RDFSession
from repro.mappings.extvp import ExtVPLayout
from repro.watdiv.basic_queries import BASIC_TEMPLATES
from repro.watdiv.template import instantiate_many


def bag(relation):
    return sorted(map(repr, relation.rows))


@pytest.fixture(scope="module")
def warm_session(small_dataset):
    session = S2RDFSession.from_graph(small_dataset.graph, num_partitions=4)
    yield session
    session.close()


@pytest.fixture(scope="module")
def dataset_path(warm_session, tmp_path_factory):
    path = str(tmp_path_factory.mktemp("store") / "dataset")
    report = warm_session.save_dataset(path)
    assert report.table_count > 0 and report.segment_count > 0
    return path


@pytest.fixture(scope="module")
def cold_session(dataset_path):
    session = S2RDFSession.open_dataset(dataset_path)
    yield session
    session.close()


class TestColdOpen:
    def test_no_parse_and_no_rebuild(self, dataset_path, monkeypatch):
        """Cold opens never touch the N-Triples parser or the ExtVP builder."""

        def forbidden(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("cold open must not parse or rebuild")

        monkeypatch.setattr(ntriples_module, "parse_ntriples", forbidden)
        monkeypatch.setattr(ExtVPLayout, "build", forbidden)
        session = S2RDFSession.open_dataset(dataset_path)
        try:
            assert session.load_report is not None
            assert not session.load_report.ntriples_parsed
            assert not session.load_report.extvp_rebuilt
            assert session.load_report.table_count > 0
            # The flags are observed, not asserted constants: the restored
            # layout's build counter really is zero.
            assert session.layout.build_count == 0
        finally:
            session.close()

    def test_instrumentation_observes_real_builds(self, small_dataset):
        """The counters the load report reads do move on the warm path."""
        from repro.rdf.ntriples import documents_parsed

        before = documents_parsed()
        session = S2RDFSession.from_ntriples("<a> <p> <b> .")
        try:
            assert documents_parsed() == before + 1
            assert session.layout.build_count == 1
        finally:
            session.close()

    def test_tables_stay_on_disk_until_scanned(self, dataset_path):
        session = S2RDFSession.open_dataset(dataset_path)
        try:
            catalog = session.layout.catalog
            names = catalog.table_names()
            assert names and all(not catalog.is_loaded(name) for name in names)
            assert all(catalog.is_stored(name) for name in names)
        finally:
            session.close()

    def test_statistics_roundtrip(self, warm_session, cold_session):
        """Zone-map aggregates restore TableStatistics exactly."""
        warm_catalog = warm_session.layout.catalog
        cold_catalog = cold_session.layout.catalog
        assert warm_catalog.statistics_names() == cold_catalog.statistics_names()
        for name in warm_catalog.statistics_names():
            warm_stats = warm_catalog.statistics(name)
            cold_stats = cold_catalog.statistics(name)
            assert cold_stats.row_count == warm_stats.row_count, name
            assert cold_stats.selectivity == pytest.approx(warm_stats.selectivity), name
            if name in warm_catalog:
                assert cold_stats.distinct_subjects == warm_stats.distinct_subjects, name
                assert cold_stats.distinct_objects == warm_stats.distinct_objects, name

    def test_extvp_statistics_restored(self, warm_session, cold_session):
        warm_stats = warm_session.layout.statistics
        cold_stats = cold_session.layout.statistics
        assert len(cold_stats) == len(warm_stats)
        for key, info in warm_stats.tables.items():
            restored = cold_stats.tables[key]
            assert restored.name == info.name
            assert restored.row_count == info.row_count
            assert restored.vp_row_count == info.vp_row_count
            assert restored.materialized == info.materialized

    def test_storage_summary_available_cold(self, cold_session):
        summary = cold_session.storage_summary()
        assert summary["total_tuples"] > 0
        assert summary["hdfs_bytes"] > 0
        assert summary["table_counts"]["total"] > 0


class TestRoundtripEquivalence:
    @pytest.mark.parametrize("template", BASIC_TEMPLATES, ids=lambda t: t.name)
    def test_basic_queries_identical(self, template, small_dataset, warm_session, cold_session):
        for query_text in instantiate_many(template, small_dataset, 2, seed=7):
            warm = warm_session.query(query_text)
            cold = cold_session.query(query_text)
            assert cold.relation.columns == warm.relation.columns
            assert bag(cold.relation) == bag(warm.relation)

    def test_statically_empty_answered_from_statistics(self, warm_session, cold_session):
        """Statistics-only (empty-table) short circuits survive the roundtrip."""
        query = "SELECT * WHERE { ?a <http://purl.org/stuff/rev#hasReview> ?b . ?b <http://purl.org/stuff/rev#hasReview> ?c }"
        warm = warm_session.query(query)
        cold = cold_session.query(query)
        assert warm.statically_empty == cold.statically_empty
        if cold.statically_empty:
            assert cold.metrics.input_tuples == 0

    def test_overwrite_guard(self, dataset_path, warm_session):
        with pytest.raises(FileExistsError):
            warm_session.save_dataset(dataset_path)


class TestOverwrite:
    def test_awkward_literals_roundtrip_through_session(self, tmp_path):
        """CR literals and xsd:string literals survive a full save/open."""
        document = "\n".join(
            [
                '<s1> <p> "line1\\rline2" .',
                '<s2> <p> "5"^^<http://www.w3.org/2001/XMLSchema#string> .',
                '<s3> <p> "5" .',
                "<s1> <q> <s2> .",
            ]
        )
        warm = S2RDFSession.from_ntriples(document)
        path = str(tmp_path / "dataset")
        warm.save_dataset(path)
        cold = S2RDFSession.open_dataset(path)
        try:
            query = "SELECT * WHERE { ?s <p> ?v }"
            assert bag(cold.query(query).relation) == bag(warm.query(query).relation)
        finally:
            warm.close()
            cold.close()

    def test_shrinking_resave_leaves_no_orphans(self, small_dataset, tmp_path):
        """Re-saving with fewer buckets must clear the old segment files."""
        session = S2RDFSession.from_graph(small_dataset.graph)
        path = str(tmp_path / "dataset")
        session.save_dataset(path, num_buckets=4)
        first = {str(p.relative_to(path)) for p in pathlib.Path(path).rglob("part-*.seg")}
        session.save_dataset(path, num_buckets=2, overwrite=True)
        second = {str(p.relative_to(path)) for p in pathlib.Path(path).rglob("part-*.seg")}
        assert all(name.endswith(("part-00000.seg", "part-00001.seg")) for name in second)
        assert not any(name.endswith(("part-00002.seg", "part-00003.seg")) for name in second)
        assert second < first
        cold = S2RDFSession.open_dataset(path)
        try:
            assert cold.load_report.num_buckets == 2
        finally:
            session.close()
            cold.close()

    def test_interrupted_write_is_detected(self, small_dataset, tmp_path):
        """A dataset without a manifest (crash mid-write) is rejected cleanly."""
        import os

        from repro.store.format import DatasetFormatError, manifest_path

        session = S2RDFSession.from_graph(small_dataset.graph)
        path = str(tmp_path / "dataset")
        session.save_dataset(path)
        session.close()
        os.remove(manifest_path(path))
        with pytest.raises(DatasetFormatError):
            S2RDFSession.open_dataset(path)
