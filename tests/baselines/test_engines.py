"""Tests for the competitor baseline engines.

The key invariant is cross-engine agreement: every engine must return the same
solution bag for the same BGP query (only the simulated runtimes differ).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    ALL_ENGINE_CLASSES,
    H2RDFPlusEngine,
    PigSparqlEngine,
    S2RDFExtVPEngine,
    S2RDFVPEngine,
    SempalaEngine,
    ShardEngine,
    UnsupportedQueryError,
    VirtuosoEngine,
)
from repro.baselines.binding_iteration import (
    clause_iteration_execute,
    index_nested_loop_execute,
    order_by_selectivity,
)
from repro.rdf.graph import Graph
from repro.rdf.terms import IRI
from repro.rdf.triple import Triple
from repro.sparql.parser import parse_query
from repro.watdiv.basic_queries import basic_template
from repro.watdiv.selectivity_queries import selectivity_template
from repro.watdiv.template import instantiate_template


def result_key(result):
    return sorted(
        tuple(sorted((k, v.n3()) for k, v in binding.items())) for binding in result.bindings
    )


@pytest.fixture(scope="module")
def loaded_engines(small_graph):
    engines = [cls() for cls in ALL_ENGINE_CLASSES]
    for engine in engines:
        engine.load(small_graph)
    return engines


QUERY_NAMES = ["L3", "S3", "S6", "F5", "C3"]


class TestCrossEngineAgreement:
    @pytest.mark.parametrize("template_name", QUERY_NAMES)
    def test_basic_queries_agree(self, loaded_engines, small_dataset, template_name):
        template = basic_template(template_name)
        query = instantiate_template(template, small_dataset, np.random.default_rng(11))
        reference = None
        for engine in loaded_engines:
            result = engine.query(query)
            assert not result.failed, f"{engine.name} failed on {template_name}"
            key = result_key(result)
            if reference is None:
                reference = key
            else:
                assert key == reference, f"{engine.name} disagrees on {template_name}"

    @pytest.mark.parametrize("template_name", ["ST-1-3", "ST-4-1", "ST-6-2", "ST-8-1"])
    def test_selectivity_queries_agree(self, loaded_engines, small_dataset, template_name):
        template = selectivity_template(template_name)
        query = instantiate_template(template, small_dataset)
        sizes = set()
        for engine in loaded_engines:
            result = engine.query(query)
            assert not result.failed
            sizes.add(len(result))
        assert len(sizes) == 1


class TestEngineBehaviours:
    def test_query_before_load_raises(self):
        for cls in ALL_ENGINE_CLASSES:
            with pytest.raises(RuntimeError):
                cls().query("SELECT * WHERE { ?s ?p ?o }")

    def test_load_reports(self, small_graph):
        for cls in (S2RDFExtVPEngine, S2RDFVPEngine, SempalaEngine, ShardEngine, PigSparqlEngine):
            report = cls().load(small_graph)
            assert report.triples == len(small_graph)
            assert report.tuples_stored > 0
            assert report.hdfs_bytes > 0
            assert report.simulated_load_seconds > 0

    def test_extvp_load_slower_and_bigger_than_vp(self, small_graph):
        extvp = S2RDFExtVPEngine().load(small_graph)
        vp = S2RDFVPEngine().load(small_graph)
        assert extvp.simulated_load_seconds > vp.simulated_load_seconds
        assert extvp.tuples_stored > vp.tuples_stored

    def test_mapreduce_engines_pay_job_latency(self, loaded_engines, small_dataset):
        query = instantiate_template(basic_template("L3"), small_dataset, np.random.default_rng(1))
        by_name = {engine.name: engine.query(query) for engine in loaded_engines}
        assert by_name["SHARD"].simulated_runtime_ms > 10_000
        assert by_name["PigSPARQL"].simulated_runtime_ms > 10_000
        assert by_name["S2RDF ExtVP"].simulated_runtime_ms < by_name["PigSPARQL"].simulated_runtime_ms

    def test_s2rdf_extvp_not_slower_than_vp(self, loaded_engines, small_dataset):
        query = instantiate_template(selectivity_template("ST-1-3"), small_dataset)
        by_name = {engine.name: engine.query(query) for engine in loaded_engines}
        assert (
            by_name["S2RDF ExtVP"].simulated_runtime_ms
            <= by_name["S2RDF VP"].simulated_runtime_ms + 1e-6
        )

    def test_h2rdf_reports_execution_mode(self, loaded_engines, small_dataset):
        query = instantiate_template(basic_template("S6"), small_dataset, np.random.default_rng(2))
        engine = next(e for e in loaded_engines if e.name == "H2RDF+")
        result = engine.query(query)
        assert result.execution_mode.startswith("hbase/")

    def test_virtuoso_warm_cache_faster(self, small_graph, small_dataset):
        query = instantiate_template(basic_template("C3"), small_dataset)
        cold = VirtuosoEngine(warm_cache=False, work_scale=1000.0)
        warm = VirtuosoEngine(warm_cache=True, work_scale=1000.0)
        cold.load(small_graph)
        warm.load(small_graph)
        assert warm.query(query).simulated_runtime_ms < cold.query(query).simulated_runtime_ms

    def test_unsupported_filter_raises(self, small_graph):
        engine = ShardEngine()
        engine.load(small_graph)
        with pytest.raises(UnsupportedQueryError):
            engine.query("SELECT * WHERE { ?x ?p ?o . FILTER(?o > 3) }")

    def test_failure_on_result_explosion(self, small_graph):
        engine = ShardEngine(max_bindings=10)
        engine.load(small_graph)
        result = engine.query(
            "PREFIX wsdbm: <http://db.uwaterloo.ca/~galuc/wsdbm/> "
            "SELECT * WHERE { ?a wsdbm:friendOf ?b . ?b wsdbm:friendOf ?c }"
        )
        assert result.failed
        assert result.simulated_runtime_ms == float("inf")


class TestBindingIteration:
    def test_order_by_selectivity_prefers_bound_patterns(self, example_graph, query_q1):
        query = parse_query(query_q1)
        patterns = list(query.pattern.patterns)
        ordered = order_by_selectivity(example_graph, patterns)
        assert len(ordered) == len(patterns)
        assert set(map(id, ordered)) == set(map(id, patterns))

    def test_index_nested_loop_matches_clause_iteration(self, example_graph, query_q1):
        patterns = list(parse_query(query_q1).pattern.patterns)
        inl = index_nested_loop_execute(example_graph, patterns)
        clause = clause_iteration_execute(example_graph, patterns)
        normalize = lambda bs: sorted(tuple(sorted((k, v.n3()) for k, v in b.items())) for b in bs)
        assert normalize(inl) == normalize(clause)
        assert len(inl) == 1


_node = st.integers(min_value=0, max_value=6).map(lambda i: IRI(f"n{i}"))
_pred = st.sampled_from([IRI("p"), IRI("q")])


class TestEquivalenceProperty:
    @given(triples=st.lists(st.tuples(_node, _pred, _node), min_size=1, max_size=25))
    @settings(max_examples=25, deadline=None)
    def test_s2rdf_matches_index_nested_loop(self, triples):
        """S2RDF over ExtVP returns the same bag as direct graph evaluation."""
        graph = Graph(Triple(s, p, o) for s, p, o in triples)
        query = "SELECT * WHERE { ?a <p> ?b . ?b <q> ?c }"
        from repro.core.session import S2RDFSession

        session = S2RDFSession.from_graph(graph)
        s2rdf_result = session.query(query)
        patterns = list(parse_query(query).pattern.patterns)
        reference = index_nested_loop_execute(graph, patterns)
        normalize = lambda bs: sorted(tuple(sorted((k, v.n3()) for k, v in b.items())) for b in bs)
        assert normalize(s2rdf_result.bindings) == normalize(reference)
