"""The public entry points: repro.connect / repro.create, session lifecycle
and the QueryResult iteration surface."""

import pytest

import repro
from repro.rdf.triple import Triple


NTRIPLES = """\
<http://ex/A> <http://ex/follows> <http://ex/B> .
<http://ex/B> <http://ex/follows> <http://ex/C> .
<http://ex/A> <http://ex/likes> <http://ex/I1> .
"""

QUERY = "SELECT * WHERE { ?x <http://ex/follows> ?y }"


def test_create_from_graph_object(example_graph):
    session = repro.create(example_graph, journal_enabled=False)
    try:
        assert len(session.query("SELECT * WHERE { ?x <follows> ?y }")) == 4
    finally:
        session.close()


def test_create_from_ntriples_string_and_triple_iterable():
    with repro.create(NTRIPLES, journal_enabled=False) as session:
        assert len(session.query(QUERY)) == 2
    triples = [Triple.of("A", "p", "B"), Triple.of("B", "p", "C")]
    with repro.create(triples, journal_enabled=False) as session:
        assert len(session.query("SELECT * WHERE { ?x <p> ?y }")) == 2


def test_create_persists_and_connect_reopens(tmp_path):
    path = str(tmp_path / "dataset")
    repro.create(NTRIPLES, path=path, num_partitions=2).close()
    with repro.connect(path, journal_enabled=False) as session:
        result = session.query(QUERY)
        assert len(result) == 2
        assert result.epoch == 0


def test_connect_accepts_config_object(tmp_path):
    path = str(tmp_path / "dataset")
    repro.create(NTRIPLES, path=path).close()
    config = repro.SessionConfig(
        execution=repro.ExecutionConfig(num_partitions=2),
        observability=repro.ObservabilityConfig(journal_enabled=False),
    )
    with repro.connect(path, config=config) as session:
        assert session.config.num_partitions == 2
        assert len(session.query(QUERY)) == 2


def test_query_result_iteration_surface(example_graph):
    with repro.create(example_graph, journal_enabled=False) as session:
        result = session.query("SELECT * WHERE { ?x <likes> ?w }")
        assert len(result) == 3
        assert len(list(result)) == 3  # __iter__ yields bindings
        dicts = result.to_dicts()
        assert all(set(d) == {"x", "w"} for d in dicts)
        assert {"x": "A", "w": "I1"} in dicts  # plain strings, not Terms


def test_close_is_idempotent_and_context_manager_closes(example_graph):
    session = repro.create(example_graph, journal_enabled=False)
    session.close()
    session.close()  # second close is a no-op
    with repro.create(example_graph, journal_enabled=False) as inner:
        inner.query("SELECT * WHERE { ?x <likes> ?w }")


def test_factories_reject_unknown_knobs(example_graph):
    with pytest.raises(TypeError):
        repro.create(example_graph, not_a_knob=True)
    with pytest.raises(TypeError):
        repro.create(example_graph, config=repro.SessionConfig(), num_partitions=2)
