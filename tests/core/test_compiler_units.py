"""Unit tests for table selection (Alg. 1), TP2SQL (Alg. 2) and BGP2SQL (Alg. 3/4)."""

import pytest

from repro.core.bgp import compile_bgp
from repro.core.table_selection import TableSelector
from repro.core.translation import triple_pattern_to_subquery
from repro.engine.plan import EmptyNode, NaturalJoinNode, PlanExecutor, SubqueryNode, count_joins
from repro.mappings.extvp import ExtVPLayout
from repro.rdf.terms import IRI, Variable
from repro.sparql.algebra import BGP, TriplePattern


def tp(s, p, o):
    def term(x):
        return Variable(x[1:]) if x.startswith("?") else IRI(x)

    return TriplePattern(term(s), term(p), term(o))


@pytest.fixture(scope="module")
def layout(example_graph):
    layout = ExtVPLayout()
    layout.build(example_graph)
    return layout


@pytest.fixture(scope="module")
def selector(layout):
    return TableSelector(layout)


class TestTableSelection:
    """The examples follow Fig. 11 of the paper (query Q1 over graph G1)."""

    Q1 = [
        tp("?x", "likes", "?w"),
        tp("?x", "follows", "?y"),
        tp("?y", "follows", "?z"),
        tp("?z", "likes", "?w"),
    ]

    def test_tp1_keeps_vp_table(self, selector):
        # TP1 (?x likes ?w): candidate SS likes|follows has SF 1, so VP wins.
        choice = selector.select(self.Q1[0], self.Q1)
        assert choice.source == "vp"
        assert choice.table_name == "vp_likes"

    def test_tp3_picks_best_selectivity(self, selector):
        # TP3 (?y follows ?z): candidates are SO follows|follows (0.75) and
        # OS follows|likes (0.25) -> the OS table wins.
        choice = selector.select(self.Q1[2], self.Q1)
        assert choice.source == "extvp"
        assert choice.selectivity == pytest.approx(0.25)
        assert "os" in choice.table_name

    def test_tp4_picks_so_table(self, selector):
        choice = selector.select(self.Q1[3], self.Q1)
        assert choice.source == "extvp"
        assert choice.selectivity == pytest.approx(1 / 3)

    def test_unbound_predicate_uses_triples_table(self, selector):
        pattern = tp("?s", "?p", "?o")
        choice = selector.select(pattern, [pattern])
        assert choice.is_triples_table

    def test_missing_predicate_is_statically_empty(self, selector):
        pattern = tp("?s", "missing", "?o")
        choice = selector.select(pattern, [pattern])
        assert choice.is_empty

    def test_empty_correlation_detected_from_statistics(self, selector):
        # likes -> follows OS correlation is empty in G1 (nobody follows an item).
        patterns = [tp("?a", "likes", "?b"), tp("?b", "follows", "?c")]
        choice = selector.select(patterns[0], patterns)
        assert choice.is_empty

    def test_vp_only_selector_ignores_extvp(self, layout):
        vp_selector = TableSelector(layout, use_extvp=False)
        choice = vp_selector.select(self.Q1[2], self.Q1)
        assert choice.source == "vp"

    def test_candidates_listing(self, selector):
        candidates = selector.candidates(self.Q1[2], self.Q1)
        kinds = {c.kind.value for c in candidates}
        assert kinds == {"so", "os"}


class TestTP2SQL:
    def test_two_variables(self, selector):
        pattern = tp("?x", "likes", "?w")
        choice = selector.select(pattern, [pattern])
        node = triple_pattern_to_subquery(pattern, choice)
        assert node.projections == (("s", "x"), ("o", "w"))
        assert node.conditions == ()

    def test_bound_subject_becomes_condition(self, selector):
        pattern = tp("A", "likes", "?w")
        choice = selector.select(pattern, [pattern])
        node = triple_pattern_to_subquery(pattern, choice)
        assert node.projections == (("o", "w"),)
        assert node.conditions == (("s", IRI("A")),)

    def test_unbound_predicate_adds_condition_on_p(self, selector):
        pattern = tp("?s", "?p", "?o")
        choice = selector.select(pattern, [pattern])
        node = triple_pattern_to_subquery(pattern, choice)
        assert ("p", "p") in node.projections
        assert node.table_name == "triples"

    def test_fully_bound_pattern(self, selector):
        pattern = tp("A", "likes", "I1")
        choice = selector.select(pattern, [pattern])
        node = triple_pattern_to_subquery(pattern, choice)
        assert node.conditions == (("s", IRI("A")), ("o", IRI("I1")))
        assert node.projections  # keeps a schema


class TestBGP2SQL:
    def test_q1_produces_three_joins(self, selector, layout):
        result = compile_bgp(BGP(TestTableSelection.Q1), selector)
        assert count_joins(result.plan) == 3
        assert not result.statically_empty
        executed = PlanExecutor(layout.catalog).execute(result.plan)
        assert len(executed) == 1  # the single solution of the running example

    def test_empty_bgp(self, selector):
        result = compile_bgp(BGP([]), selector)
        assert isinstance(result.plan, EmptyNode)

    def test_single_pattern_is_a_subquery(self, selector):
        result = compile_bgp(BGP([tp("?x", "likes", "?w")]), selector)
        assert isinstance(result.plan, SubqueryNode)

    def test_statically_empty_short_circuit(self, selector):
        result = compile_bgp(BGP([tp("?a", "likes", "?b"), tp("?b", "follows", "?c")]), selector)
        assert result.statically_empty
        assert isinstance(result.plan, EmptyNode)

    def test_join_order_prefers_bound_patterns(self, selector):
        patterns = [tp("?x", "follows", "?y"), tp("A", "likes", "?w"), tp("?x", "likes", "?w")]
        result = compile_bgp(BGP(patterns), selector, optimize_join_order=True)
        assert result.join_order[0].bound_count() == 2

    def test_join_order_starts_with_smallest_table(self, selector):
        result = compile_bgp(BGP(TestTableSelection.Q1), selector, optimize_join_order=True)
        first_choice = result.choices[0][1]
        assert first_choice.row_count == min(choice.row_count for _, choice in result.choices)

    def test_unoptimized_preserves_textual_order(self, selector):
        result = compile_bgp(BGP(TestTableSelection.Q1), selector, optimize_join_order=False)
        assert result.join_order == list(TestTableSelection.Q1)

    def test_optimization_does_not_change_results(self, selector, layout):
        executor = PlanExecutor(layout.catalog)
        optimized = compile_bgp(BGP(TestTableSelection.Q1), selector, optimize_join_order=True)
        unoptimized = compile_bgp(BGP(TestTableSelection.Q1), selector, optimize_join_order=False)
        left = executor.execute(optimized.plan)
        right = executor.execute(unoptimized.plan)
        assert sorted(map(repr, left.project(sorted(left.columns)).rows)) == sorted(
            map(repr, right.project(sorted(left.columns)).rows)
        )

    def test_sql_rendering_mentions_selected_tables(self, selector):
        result = compile_bgp(BGP(TestTableSelection.Q1), selector)
        sql = result.plan.to_sql()
        for table in result.selected_tables:
            assert table in sql


class TestCompiledQueryStaticallyEmpty:
    """Regression tests for CompiledQuery.statically_empty over multiple BGPs."""

    @pytest.fixture(scope="class")
    def compiler(self, layout):
        from repro.core.compiler import QueryCompiler

        return QueryCompiler(TableSelector(layout))

    @pytest.fixture(scope="class")
    def parse(self):
        from repro.sparql.parser import parse_query

        return parse_query

    def test_mixed_union_is_not_statically_empty(self, compiler, parse):
        # One UNION branch has a non-existing correlation, the other matches:
        # the query must not be pruned to empty.
        compiled = compiler.compile(
            parse(
                "SELECT * WHERE { { ?a <likes> ?b . ?b <likes> ?c } "
                "UNION { ?x <follows> ?y } }"
            )
        )
        assert len(compiled.bgp_results) == 2
        assert any(result.statically_empty for result in compiled.bgp_results)
        assert not compiled.statically_empty

    def test_union_of_two_empty_branches_is_statically_empty(self, compiler, parse):
        compiled = compiler.compile(
            parse(
                "SELECT * WHERE { { ?a <likes> ?b . ?b <likes> ?c } "
                "UNION { ?x <missing> ?y } }"
            )
        )
        assert all(result.statically_empty for result in compiled.bgp_results)
        assert compiled.statically_empty

    def test_no_bgps_is_not_statically_empty(self):
        from repro.core.compiler import CompiledQuery
        from repro.engine.plan import EmptyNode

        assert not CompiledQuery(plan=EmptyNode()).statically_empty
