"""SessionConfig split: grouped construction, flat aliases, the deprecation
surface and construction-time validation."""

import pytest

from repro.core.config import (
    FLAT_FIELD_HOMES,
    LEGACY_FLAT_FIELDS,
    VALID_ADMISSION_POLICIES,
    VALID_ENGINES,
    VALID_EXECUTION_MODES,
    ExecutionConfig,
    ObservabilityConfig,
    ServingConfig,
    SessionConfig,
    StoreConfig,
)

GROUPS = {
    "execution": ExecutionConfig,
    "store": StoreConfig,
    "observability": ObservabilityConfig,
    "serving": ServingConfig,
}


# --------------------------------------------------------------------------- #
# Audit: every historical flat knob has exactly one nested home
# --------------------------------------------------------------------------- #
def test_every_legacy_flat_field_has_exactly_one_home():
    from dataclasses import fields

    for name in LEGACY_FLAT_FIELDS:
        homes = [
            group_name
            for group_name, group_cls in GROUPS.items()
            if name in {f.name for f in fields(group_cls)}
        ]
        assert homes == [FLAT_FIELD_HOMES[name]], name


def test_flat_field_homes_covers_all_group_fields_and_nothing_else():
    from dataclasses import fields

    expected = {
        field.name: group_name
        for group_name, group_cls in GROUPS.items()
        for field in fields(group_cls)
    }
    assert FLAT_FIELD_HOMES == expected
    # The legacy list is a strict subset: new knobs (execution_mode, ...) are
    # flat-addressable too, but only pre-split knobs are documented as legacy.
    assert set(LEGACY_FLAT_FIELDS) <= set(FLAT_FIELD_HOMES)


# --------------------------------------------------------------------------- #
# Grouped and flat construction
# --------------------------------------------------------------------------- #
def test_grouped_construction_is_silent_and_applies():
    config = SessionConfig(
        execution=ExecutionConfig(num_partitions=8, engine="sqlite"),
        serving=ServingConfig(max_concurrent_queries=16),
    )
    assert config.execution.num_partitions == 8
    assert config.serving.max_concurrent_queries == 16
    # Untouched groups get defaults.
    assert config.store == StoreConfig()
    assert config.observability == ObservabilityConfig()


def test_flat_constructor_kwargs_warn_and_apply():
    with pytest.warns(DeprecationWarning, match="flat SessionConfig knob 'num_partitions'"):
        config = SessionConfig(num_partitions=8)
    assert config.execution.num_partitions == 8
    # The warning names the new spelling.
    with pytest.warns(DeprecationWarning, match="ExecutionConfig"):
        SessionConfig(engine="sqlite")


def test_flat_aliases_read_and_write_silently():
    import warnings

    config = SessionConfig()
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        config.num_partitions = 6
        config.tracing_enabled = True
        config.max_concurrent_queries = 9
        assert config.num_partitions == 6
        assert config.selectivity_threshold == 1.0
    assert config.execution.num_partitions == 6
    assert config.observability.tracing_enabled is True
    assert config.serving.max_concurrent_queries == 9


def test_from_flat_is_silent_and_rejects_unknown_knobs():
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("error")
        config = SessionConfig.from_flat(num_partitions=4, journal_enabled=False)
    assert config.execution.num_partitions == 4
    assert config.observability.journal_enabled is False
    with pytest.raises(TypeError, match="unknown session knob"):
        SessionConfig.from_flat(numm_partitions=4)


def test_unknown_flat_constructor_kwarg_is_a_type_error():
    with pytest.raises(TypeError, match="unexpected keyword"):
        SessionConfig(not_a_knob=1)


def test_equality_and_repr():
    assert SessionConfig() == SessionConfig()
    assert SessionConfig.from_flat(num_partitions=2) != SessionConfig()
    assert "ExecutionConfig" in repr(SessionConfig())


# --------------------------------------------------------------------------- #
# Construction-time validation
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize(
    "group_cls, kwargs, message",
    [
        (ExecutionConfig, {"engine": "spark"}, "unknown engine"),
        (ExecutionConfig, {"num_partitions": 0}, "num_partitions"),
        (ExecutionConfig, {"broadcast_memory_limit": 0}, "broadcast_memory_limit"),
        (ExecutionConfig, {"execution_mode": "gpu"}, "unknown execution_mode"),
        (ExecutionConfig, {"worker_processes": 0}, "worker_processes"),
        (ExecutionConfig, {"work_scale": 0.0}, "work_scale"),
        (StoreConfig, {"selectivity_threshold": 1.5}, "selectivity_threshold"),
        (StoreConfig, {"compaction_threshold": 0}, "compaction_threshold"),
        (ServingConfig, {"max_concurrent_queries": 0}, "max_concurrent_queries"),
        (ServingConfig, {"admission_queue_limit": 0}, "admission_queue_limit"),
        (ServingConfig, {"admission_policy": "drop"}, "unknown admission_policy"),
    ],
)
def test_groups_validate_at_construction(group_cls, kwargs, message):
    with pytest.raises(ValueError, match=message):
        group_cls(**kwargs)


def test_flat_spellings_validate_too():
    with pytest.raises(ValueError, match="unknown engine"):
        SessionConfig.from_flat(engine="spark")
    with pytest.warns(DeprecationWarning):
        with pytest.raises(ValueError, match="num_partitions"):
            SessionConfig(num_partitions=-1)
    # Alias writes re-validate on demand via validate().
    config = SessionConfig()
    config.num_partitions = -1
    with pytest.raises(ValueError, match="num_partitions"):
        config.validate()


def test_valid_value_tuples_are_the_documented_ones():
    assert VALID_ENGINES == ("native", "sqlite")
    assert VALID_EXECUTION_MODES == ("thread", "process")
    assert VALID_ADMISSION_POLICIES == ("queue", "reject")


def test_session_factories_validate_at_construction(example_graph):
    from repro.core.session import S2RDFSession

    with pytest.raises(ValueError, match="unknown engine"):
        S2RDFSession.from_graph(example_graph, engine="spark")
    with pytest.raises(ValueError, match="num_partitions"):
        S2RDFSession.from_graph(example_graph, num_partitions=0)
