"""Golden tests for EXPLAIN ANALYZE, per-phase query timings, and the span
tree recorded for a traced query.

The stale-statistics scenario is the acceptance criterion from the paper's
adaptive-execution story: the static planner, fed inflated row counts,
shuffles a join whose inputs comfortably fit a broadcast; ``explain_analyze``
must show the estimated-vs-observed gap and the strategy revision per join."""

import re

import pytest

from repro import Graph, S2RDFSession, Triple
from repro.obs.explain import ExplainAnalyzeResult


def build_graph() -> Graph:
    """A follows/likes graph with enough rows for multi-partition joins."""
    triples = []
    for i in range(60):
        triples.append(Triple.of(f"u{i}", "follows", f"u{(i * 7) % 30}"))
    for i in range(0, 60, 2):
        triples.append(Triple.of(f"u{i}", "likes", f"p{i % 5}"))
    return Graph(triples, name="social")


QUERY = "SELECT * WHERE { ?x <follows> ?y . ?y <likes> ?z }"


def stale_statistics(session: S2RDFSession, factor: int = 1_000_000) -> None:
    """Inflate every table's registered row count by ``factor``."""
    catalog = session.layout.catalog
    for name in list(catalog.statistics_names()):
        statistics = catalog.statistics(name)
        if name in catalog and statistics.row_count > 0:
            catalog.register_statistics_only(
                name, statistics.row_count * factor, statistics.selectivity
            )


@pytest.fixture()
def session():
    with S2RDFSession.from_graph(build_graph(), num_partitions=4) as session:
        yield session


# --------------------------------------------------------------------------- #
# Accurate statistics: the plan runs as chosen
# --------------------------------------------------------------------------- #
def test_explain_analyze_with_accurate_statistics(session):
    explained = session.explain_analyze(QUERY)
    assert isinstance(explained, ExplainAnalyzeResult)
    text = str(explained)
    assert "== Physical Plan (analyzed) ==" in text
    assert "Join" in text
    assert "Scan" in text
    # With fresh statistics the chosen strategy is the executed strategy.
    assert "(as planned)" in text
    assert "->" not in text
    assert "AQE replans:" not in text
    # Every executed operator reports estimated and observed rows + elapsed.
    annotations = re.findall(r"\(est=(\S+) rows, actual=(\d+) rows, [\d.]+ ms\)", text)
    assert annotations, text
    assert "Phases:" in text
    assert "Wall clock:" in text
    # The attached result is the real query result.
    assert len(explained.result.relation) == len(session.query(QUERY).relation)


def test_explain_analyze_shows_exchange_lines(session):
    text = str(session.explain_analyze(QUERY))
    assert "exchange:" in text
    assert "moved" in text and "task(s)" in text


# --------------------------------------------------------------------------- #
# Stale statistics + AQE: the acceptance scenario
# --------------------------------------------------------------------------- #
def test_explain_analyze_shows_replan_under_stale_statistics(session):
    stale_statistics(session)
    explained = session.explain_analyze(QUERY)
    text = str(explained)
    # The join's strategy was revised at run time, and the report says why.
    assert "strategy: ShuffleHashJoin -> BroadcastHashJoin" in text
    assert "planned:" in text and "executed:" in text
    assert "reason:" in text
    assert "demoted to broadcast" in text
    assert "AQE replans:" in text
    # Estimated vs observed rows expose the stale-statistics gap per operator.
    pairs = [
        (int(est), int(actual))
        for est, actual in re.findall(r"\(est=(\d+) rows, actual=(\d+) rows", text)
    ]
    assert pairs, text
    assert any(est > actual * 1000 for est, actual in pairs if actual > 0), pairs
    assert len(explained.result.replanned_joins) >= 1


def test_explain_analyze_works_with_tracing_enabled():
    with S2RDFSession.from_graph(
        build_graph(), num_partitions=4, tracing_enabled=True
    ) as session:
        stale_statistics(session)
        text = str(session.explain_analyze(QUERY))
        assert "ShuffleHashJoin -> BroadcastHashJoin" in text
        # The traced run recorded the replan as a span event too.
        events = [
            name
            for span in session.tracer.finished_spans()
            for name, _, _ in span.events
        ]
        assert "aqe-replan" in events


def test_explain_analyze_without_adaptive_runs_the_static_plan():
    with S2RDFSession.from_graph(
        build_graph(), num_partitions=4, adaptive_enabled=False
    ) as session:
        stale_statistics(session)
        text = str(session.explain_analyze(QUERY))
        # No replan: the mis-chosen shuffle executes exactly as planned.
        assert "->" not in text
        assert "(as planned)" in text
        assert "AQE replans:" not in text


# --------------------------------------------------------------------------- #
# Per-phase timings on every QueryResult (tracing on or off)
# --------------------------------------------------------------------------- #
def test_query_result_phase_timings_without_tracing(session):
    result = session.query(QUERY)
    assert set(result.phase_ms) == {"parse", "compile", "plan", "execute"}
    assert all(value >= 0.0 for value in result.phase_ms.values())
    assert result.wall_clock_ms > 0.0
    # Phases partition the measured wall clock (render overhead excluded).
    assert sum(result.phase_ms.values()) <= result.wall_clock_ms + 1e-6
    # Backwards-compatible alias.
    assert result.wallclock_ms == result.wall_clock_ms


# --------------------------------------------------------------------------- #
# The span tree of a traced query matches the plan shape
# --------------------------------------------------------------------------- #
def test_traced_query_span_tree_matches_plan_shape():
    with S2RDFSession.from_graph(
        build_graph(), num_partitions=4, tracing_enabled=True
    ) as session:
        session.query(QUERY)
        tracer = session.tracer
        (root,) = tracer.children_of(None)
        assert root.name == "query"
        phases = [span.name for span in tracer.children_of(root)]
        assert phases == ["parse", "compile", "execute", "render"]
        # Table selection happens inside compile.
        (compile_span,) = [s for s in tracer.children_of(root) if s.name == "compile"]
        assert [s.name for s in tracer.children_of(compile_span)] == ["table-selection"]
        # Physical planning happens inside the executor, under execute.
        (execute_span,) = [s for s in tracer.children_of(root) if s.name == "execute"]
        assert "physical-plan" in [s.name for s in tracer.children_of(execute_span)]
        # One operator span per executed plan node, rooted under execute.
        operator_spans = [s for s in tracer.finished_spans() if s.category == "operator"]
        assert len(operator_spans) == len(session.executor.last_node_stats)
        # Exchanges carry per-partition task children.
        exchanges = [s for s in tracer.finished_spans() if s.category == "exchange"]
        assert exchanges
        for exchange in exchanges:
            tasks = tracer.children_of(exchange)
            assert tasks and all(task.category == "task" for task in tasks)


def test_disabled_tracing_records_no_spans(session):
    session.query(QUERY)
    assert session.tracer.finished_spans() == []
    assert not session.tracer.enabled


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
