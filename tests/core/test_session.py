"""Integration tests for the S2RDF session (the paper's running example plus
SPARQL operator coverage)."""

import pytest

from repro.core.session import S2RDFSession
from repro.rdf.graph import Graph
from repro.rdf.terms import IRI, Literal
from repro.rdf.triple import Triple


@pytest.fixture(scope="module")
def session(example_graph):
    return S2RDFSession.from_graph(example_graph)


class TestRunningExample:
    def test_q1_single_solution(self, session, query_q1):
        result = session.query(query_q1)
        assert len(result) == 1
        binding = result.bindings[0]
        assert binding["x"] == IRI("A")
        assert binding["y"] == IRI("B")
        assert binding["z"] == IRI("C")
        assert binding["w"] == IRI("I2")

    def test_q1_uses_extvp_tables(self, session, query_q1):
        result = session.query(query_q1)
        assert any(name.startswith("extvp_") for name in result.selected_tables)

    def test_q1_sql_is_generated(self, session, query_q1):
        sql = session.explain(query_q1)
        assert "SELECT" in sql and "JOIN" in sql

    def test_metrics_populated(self, session, query_q1):
        result = session.query(query_q1)
        assert result.metrics.joins == 3
        assert result.metrics.input_tuples > 0
        assert result.simulated_runtime_ms > 0
        assert result.wallclock_ms >= 0

    def test_statistics_short_circuit(self, session):
        result = session.query("SELECT * WHERE { ?a <likes> ?b . ?b <likes> ?c }")
        assert result.statically_empty
        assert len(result) == 0
        assert result.metrics.input_tuples == 0

    def test_vp_only_session_same_result(self, example_graph, query_q1):
        vp_session = S2RDFSession.from_graph(example_graph, use_extvp=False)
        result = vp_session.query(query_q1)
        assert len(result) == 1
        assert all(not name.startswith("extvp_") for name in result.selected_tables)


class TestSparqlOperators:
    @pytest.fixture(scope="class")
    def rich_session(self):
        graph = Graph(
            [
                Triple(IRI("A"), IRI("follows"), IRI("B")),
                Triple(IRI("B"), IRI("follows"), IRI("C")),
                Triple(IRI("A"), IRI("age"), Literal("30")),
                Triple(IRI("B"), IRI("age"), Literal("15")),
                Triple(IRI("A"), IRI("name"), Literal("ada")),
            ]
        )
        return S2RDFSession.from_graph(graph)

    def test_projection(self, rich_session):
        result = rich_session.query("SELECT ?x WHERE { ?x <follows> ?y }")
        assert result.variables == ("x",)
        assert len(result) == 2

    def test_distinct(self, rich_session):
        result = rich_session.query("SELECT DISTINCT ?p WHERE { ?s ?p ?o }")
        assert len(result) == 3

    def test_filter(self, rich_session):
        result = rich_session.query("SELECT ?x WHERE { ?x <age> ?a . FILTER(?a > 20) }")
        assert result.values("x") == [IRI("A")]

    def test_optional(self, rich_session):
        result = rich_session.query(
            "SELECT ?x ?n WHERE { ?x <follows> ?y . OPTIONAL { ?x <name> ?n } }"
        )
        by_subject = {b["x"]: b.get("n") for b in result.bindings}
        assert by_subject[IRI("A")] == Literal("ada")
        assert by_subject.get(IRI("B")) is None

    def test_union(self, rich_session):
        result = rich_session.query(
            "SELECT ?x WHERE { { ?x <age> ?a } UNION { ?x <name> ?n } }"
        )
        assert len(result) == 3

    def test_order_by_and_limit(self, rich_session):
        result = rich_session.query(
            "SELECT ?x ?a WHERE { ?x <age> ?a } ORDER BY ?a LIMIT 1"
        )
        assert len(result) == 1
        assert result.bindings[0]["x"] == IRI("B")

    def test_offset(self, rich_session):
        result = rich_session.query("SELECT ?x WHERE { ?x <age> ?a } ORDER BY ?x LIMIT 5 OFFSET 1")
        assert len(result) == 1

    def test_bound_object_pattern(self, rich_session):
        result = rich_session.query("SELECT ?x WHERE { ?x <follows> <C> }")
        assert result.values("x") == [IRI("B")]

    def test_unbound_predicate_query(self, rich_session):
        result = rich_session.query("SELECT ?p WHERE { <A> ?p ?o }")
        assert len(result) == 3

    def test_result_as_table_rendering(self, rich_session):
        result = rich_session.query("SELECT ?x ?a WHERE { ?x <age> ?a }")
        rendered = result.as_table()
        assert "x" in rendered and "|" in rendered


class TestAggregateQueries:
    """GROUP BY through parser -> algebra -> compiler -> both engines."""

    GRAPH = Graph(
        [
            Triple(IRI("A"), IRI("follows"), IRI("B")),
            Triple(IRI("A"), IRI("follows"), IRI("C")),
            Triple(IRI("B"), IRI("follows"), IRI("C")),
            Triple(IRI("A"), IRI("age"), Literal("30", datatype="http://www.w3.org/2001/XMLSchema#integer")),
            Triple(IRI("B"), IRI("age"), Literal("15", datatype="http://www.w3.org/2001/XMLSchema#integer")),
        ]
    )

    @pytest.fixture(scope="class", params=["native", "sqlite"])
    def agg_session(self, request):
        session = S2RDFSession.from_graph(self.GRAPH, engine=request.param)
        yield session
        session.close()

    def test_grouped_count(self, agg_session):
        result = agg_session.query(
            "SELECT ?x (COUNT(?y) AS ?n) WHERE { ?x <follows> ?y } GROUP BY ?x"
        )
        assert result.variables == ("x", "n")
        assert sorted(result.relation.rows, key=repr) == [(IRI("A"), 2), (IRI("B"), 1)]

    def test_implicit_group(self, agg_session):
        result = agg_session.query(
            "SELECT (SUM(?a) AS ?total) (AVG(?a) AS ?mean) WHERE { ?x <age> ?a }"
        )
        assert result.relation.rows == [(45, 22.5)]

    def test_implicit_group_over_empty_input(self, agg_session):
        result = agg_session.query(
            "SELECT (COUNT(?y) AS ?n) (SUM(?y) AS ?s) (MIN(?y) AS ?lo) "
            "WHERE { ?x <nothing> ?y }"
        )
        assert result.relation.rows == [(0, 0, None)]

    def test_count_distinct(self, agg_session):
        result = agg_session.query(
            "SELECT (COUNT(DISTINCT ?y) AS ?n) WHERE { ?x <follows> ?y }"
        )
        assert result.relation.rows == [(2,)]

    def test_min_max(self, agg_session):
        result = agg_session.query(
            "SELECT (MIN(?a) AS ?lo) (MAX(?a) AS ?hi) WHERE { ?x <age> ?a }"
        )
        # MIN/MAX select an *input value*, so the original terms come back.
        (lo, hi), = result.relation.rows
        assert (lo.to_python(), hi.to_python()) == (15, 30)

    def test_engine_recorded_on_result_and_in_explain_analyze(self, agg_session):
        result = agg_session.query(
            "SELECT ?x (COUNT(?y) AS ?n) WHERE { ?x <follows> ?y } GROUP BY ?x"
        )
        assert result.engine == agg_session.config.engine
        analyzed = agg_session.explain_analyze(
            "SELECT ?x (COUNT(?y) AS ?n) WHERE { ?x <follows> ?y } GROUP BY ?x"
        )
        assert f"Engine: {agg_session.config.engine}" in analyzed.text


class TestSessionConstruction:
    def test_from_ntriples(self):
        document = "<A> <p> <B> .\n<B> <p> <C> ."
        session = S2RDFSession.from_ntriples(document)
        assert len(session.query("SELECT * WHERE { ?x <p> ?y }")) == 2

    def test_storage_summary_keys(self, session):
        summary = session.storage_summary()
        assert {"vp_tuples", "extvp_tuples", "total_tuples", "hdfs_bytes", "table_counts"} <= set(summary)

    def test_work_scale_scales_runtime(self, example_graph, query_q1):
        base = S2RDFSession.from_graph(example_graph, work_scale=1.0)
        scaled = S2RDFSession.from_graph(example_graph, work_scale=1e6)
        assert scaled.query(query_q1).simulated_runtime_ms > base.query(query_q1).simulated_runtime_ms

    def test_threshold_session_still_correct(self, example_graph, query_q1):
        session = S2RDFSession.from_graph(example_graph, selectivity_threshold=0.25)
        assert len(session.query(query_q1)) == 1


class TestPartitionedRuntime:
    def test_partitioned_session_matches_serial(self, example_graph, query_q1):
        serial = S2RDFSession.from_graph(example_graph)
        parallel = S2RDFSession.from_graph(example_graph, num_partitions=4, broadcast_threshold=0)
        left = serial.query(query_q1)
        right = parallel.query(query_q1)
        assert sorted(map(repr, left.relation.rows)) == sorted(map(repr, right.relation.rows))
        assert right.metrics.shuffle_joins > 0
        assert right.metrics.shuffled_bytes > 0

    def test_join_strategies_reported(self, session, query_q1):
        result = session.query(query_q1)
        assert len(result.join_strategies) == result.metrics.joins
        assert all("HashJoin" in strategy for strategy in result.join_strategies)

    def test_broadcast_threshold_switches_strategy(self, example_graph, query_q1):
        broadcast = S2RDFSession.from_graph(example_graph, num_partitions=2)
        shuffle = S2RDFSession.from_graph(example_graph, num_partitions=2, broadcast_threshold=0)
        assert all("BroadcastHashJoin" in s for s in broadcast.query(query_q1).join_strategies)
        assert all("ShuffleHashJoin" in s for s in shuffle.query(query_q1).join_strategies)

    def test_session_is_a_context_manager(self, example_graph, query_q1):
        with S2RDFSession.from_graph(example_graph, num_partitions=4, broadcast_threshold=0) as session:
            assert len(session.query(query_q1)) == 1
        assert session.executor._pool is None  # worker threads released

    def test_observed_shuffle_volume_feeds_cost_model(self, example_graph, query_q1):
        session = S2RDFSession.from_graph(example_graph, num_partitions=2, broadcast_threshold=0)
        result = session.query(query_q1)
        expected = session.cost_model.shuffle_ns(result.metrics)
        assert result.metrics.shuffled_bytes > 0
        assert expected == pytest.approx(
            result.metrics.shuffled_bytes * 8.0 / session.cost_model.cluster.worker_nodes
        )


class TestStorageSummaryReport:
    def test_load_seconds_always_populated(self, session):
        summary = session.storage_summary()
        assert summary["load_seconds"] > 0.0

    def test_unbuilt_layout_raises_instead_of_zeros(self):
        from repro.mappings.extvp import ExtVPLayout

        unbuilt = S2RDFSession(ExtVPLayout())
        with pytest.raises(RuntimeError, match="build report"):
            unbuilt.storage_summary()
