"""QueryScheduler: handles, priority dispatch, admission backpressure,
result sharing and the journal's queue_ms field."""

import threading
import time

import pytest

import repro
from repro.core.config import ServingConfig
from repro.serve.scheduler import AdmissionError, QueryScheduler


Q_BLOCK = "SELECT * WHERE { ?x <follows> ?y }"
Q_LOW = "SELECT * WHERE { ?x <likes> ?w }"
Q_HIGH = "SELECT ?y WHERE { <A> <follows> ?y }"


@pytest.fixture()
def session(example_graph):
    session = repro.create(example_graph)  # in-memory journal on by default
    yield session
    session.close()


class GatedQuery:
    """Wrap session.query: record execution order, block on Q_BLOCK."""

    def __init__(self, session):
        self.gate = threading.Event()
        self.order = []
        self._original = session.query
        session.query = self  # instance attribute shadows the bound method

    def __call__(self, query_text):
        self.order.append(query_text)
        if query_text == Q_BLOCK:
            assert self.gate.wait(timeout=30)
        return self._original(query_text)

    def wait_for_block(self):
        deadline = time.monotonic() + 30
        while Q_BLOCK not in self.order:
            assert time.monotonic() < deadline
            time.sleep(0.001)


def test_handle_result_done_and_iteration(session):
    with session.serve() as scheduler:
        handle = scheduler.submit(Q_LOW)
        result = handle.result(timeout=30)
        assert handle.done()
        assert handle.exception() is None
        assert len(result) == 3
        stats = scheduler.stats()
        assert stats["completed"] == 1
        assert stats["p99_ms"] >= stats["p50_ms"] >= 0.0


def test_failed_query_raises_through_the_handle(session):
    with session.serve() as scheduler:
        handle = scheduler.submit("SELECT * WHERE { broken syntax")
        with pytest.raises(Exception):
            handle.result(timeout=30)
        assert handle.done()
        assert handle.exception() is not None


def test_result_timeout_raises_timeout_error(session):
    gated = GatedQuery(session)
    with session.serve(serving=ServingConfig(share_results=False)) as scheduler:
        handle = scheduler.submit(Q_BLOCK)
        with pytest.raises(TimeoutError):
            handle.result(timeout=0.05)
        gated.gate.set()
        handle.result(timeout=30)


def test_priority_orders_dispatch_fifo_within_equals(session):
    gated = GatedQuery(session)
    serving = ServingConfig(max_concurrent_queries=1, share_results=False)
    with session.serve(serving=serving) as scheduler:
        blocker = scheduler.submit(Q_BLOCK)
        gated.wait_for_block()  # the only dispatcher is now busy
        low = scheduler.submit(Q_LOW, priority=0)
        high = scheduler.submit(Q_HIGH, priority=5)
        gated.gate.set()
        for handle in (blocker, low, high):
            handle.result(timeout=30)
    assert gated.order == [Q_BLOCK, Q_HIGH, Q_LOW]


def test_reject_policy_raises_admission_error(session):
    gated = GatedQuery(session)
    serving = ServingConfig(
        max_concurrent_queries=1,
        admission_queue_limit=1,
        admission_policy="reject",
        share_results=False,
    )
    with session.serve(serving=serving) as scheduler:
        blocker = scheduler.submit(Q_BLOCK)
        gated.wait_for_block()  # blocker left the queue; the dispatcher holds it
        queued = scheduler.submit(Q_LOW)  # fills the one-slot admission queue
        with pytest.raises(AdmissionError, match="admission queue is full"):
            scheduler.submit(Q_HIGH)
        gated.gate.set()
        blocker.result(timeout=30)
        queued.result(timeout=30)
    assert session.metrics.counter_value("s2rdf_scheduler_rejected_total") == 1


def test_queue_policy_blocks_submitter_until_a_slot_frees(session):
    gated = GatedQuery(session)
    serving = ServingConfig(
        max_concurrent_queries=1,
        admission_queue_limit=1,
        admission_policy="queue",
        share_results=False,
    )
    with session.serve(serving=serving) as scheduler:
        scheduler.submit(Q_BLOCK)
        gated.wait_for_block()
        scheduler.submit(Q_LOW)  # fills the queue
        admitted = []

        def submitter():
            admitted.append(scheduler.submit(Q_HIGH))

        thread = threading.Thread(target=submitter)
        thread.start()
        time.sleep(0.05)
        assert not admitted  # still blocked on the full queue
        gated.gate.set()  # blocker finishes; the queue drains; slot frees
        thread.join(timeout=30)
        assert not thread.is_alive()
        admitted[0].result(timeout=30)


def test_identical_inflight_queries_share_one_execution(session):
    gated = GatedQuery(session)
    with session.serve() as scheduler:  # share_results defaults True
        leader = scheduler.submit(Q_BLOCK)
        gated.wait_for_block()
        followers = [scheduler.submit(Q_BLOCK) for _ in range(3)]
        gated.gate.set()
        result = leader.result(timeout=30)
        assert not leader.shared
        for follower in followers:
            assert follower.shared
            assert follower.result(timeout=30) is result  # same object, one run
    assert gated.order.count(Q_BLOCK) == 1
    assert session.metrics.counter_value("s2rdf_scheduler_shared_results_total") == 3


def test_sharing_disabled_runs_every_submission(session):
    gated = GatedQuery(session)
    with session.serve(serving=ServingConfig(share_results=False)) as scheduler:
        gated.gate.set()  # never block
        handles = [scheduler.submit(Q_BLOCK) for _ in range(3)]
        for handle in handles:
            handle.result(timeout=30)
    assert gated.order.count(Q_BLOCK) == 3


def test_queue_ms_lands_in_the_journal(session):
    with session.serve() as scheduler:
        scheduler.submit(Q_LOW).result(timeout=30)
        scheduler.drain(timeout=30)
    records = session.journal.records()
    assert records, "scheduled query must be journaled"
    assert records[-1].queue_ms is not None
    assert records[-1].queue_ms >= 0.0
    # A direct (unscheduled) query has no admission queue to wait in.
    session.query(Q_HIGH)
    assert session.journal.records()[-1].queue_ms is None


def test_closed_scheduler_rejects_submissions(session):
    scheduler = session.serve()
    scheduler.submit(Q_LOW).result(timeout=30)
    scheduler.close()
    with pytest.raises(RuntimeError, match="closed"):
        scheduler.submit(Q_LOW)
