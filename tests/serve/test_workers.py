"""Partition worker pool: wire format, join/scan/query tasks and epoch
refresh inside the workers."""

from array import array

import pytest

from repro.core.session import S2RDFSession
from repro.engine.relation import Relation
from repro.engine.vectorized import ColumnBatch
from repro.rdf.graph import Graph
from repro.rdf.triple import Triple
from repro.serve.workers import (
    PartitionWorkerPool,
    pack_input,
    unpack_input,
)


def bag(relation):
    return sorted(map(repr, relation.rows))


# --------------------------------------------------------------------------- #
# Wire format
# --------------------------------------------------------------------------- #
def test_relation_roundtrip():
    relation = Relation(("a", "b"), [(1, 2), (3, 4)])
    rebuilt = unpack_input(pack_input(relation))
    assert isinstance(rebuilt, Relation)
    assert rebuilt.columns == relation.columns
    assert bag(rebuilt) == bag(relation)


def test_batch_roundtrip_reattaches_decoder():
    batch = ColumnBatch(
        ("a", "b"),
        [array("q", [1, 2, 3]), array("q", [4, 5, 6])],
        decode=lambda id_: f"term{id_}",
        selection=[0, 2],
    )
    packed = pack_input(batch)
    rebuilt = unpack_input(packed, decode=lambda id_: f"term{id_}")
    assert isinstance(rebuilt, ColumnBatch)
    assert rebuilt.columns == batch.columns
    assert list(rebuilt.selection) == [0, 2]
    assert bag(rebuilt.to_relation()) == bag(batch.to_relation())


def test_batch_without_decoder_poisons_decode():
    batch = ColumnBatch(("a",), [array("q", [7])], decode=lambda id_: id_)
    rebuilt = unpack_input(pack_input(batch))
    with pytest.raises(RuntimeError, match="without a decoder"):
        rebuilt.decode(7)


def test_pack_input_rejects_foreign_types():
    with pytest.raises(TypeError, match="cannot ship"):
        pack_input({"not": "shippable"})


# --------------------------------------------------------------------------- #
# The pool
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def stored(tmp_path_factory):
    graph = Graph(
        [Triple.of(f"u{i}", "follows", f"u{(i * 3 + 1) % 20}") for i in range(20)]
        + [Triple.of(f"u{i}", "likes", f"i{i % 4}") for i in range(20)]
    )
    saver = S2RDFSession.from_graph(graph, num_partitions=2, journal_enabled=False)
    path = str(tmp_path_factory.mktemp("workers") / "dataset")
    saver.save_dataset(path)
    saver.close()
    session = S2RDFSession.open_dataset(path, journal_enabled=False)
    yield path, session
    session.close()


def test_join_tasks_without_dataset_act_as_compute_pool():
    left = Relation(("a", "b"), [(1, 10), (2, 20)])
    right = Relation(("b", "c"), [(10, 100), (20, 200), (30, 300)])
    with PartitionWorkerPool(num_workers=2) as pool:
        ((joined, comparisons, elapsed_ms),) = pool.run_join_tasks(
            [{"left": pack_input(left), "right": pack_input(right), "outer": False}]
        )
        assert bag(joined) == bag(left.natural_join(right))
        assert comparisons > 0
        assert elapsed_ms >= 0.0
        # Outer joins preserve the unmatched left row.
        wider = Relation(("a", "b"), [(1, 10), (9, 99)])
        ((outer, _, _),) = pool.run_join_tasks(
            [{"left": pack_input(wider), "right": pack_input(right), "outer": True}]
        )
        assert len(outer.rows) == 2


def test_scan_and_query_tasks_require_dataset():
    with PartitionWorkerPool(num_workers=1) as pool:
        with pytest.raises(RuntimeError, match="without a dataset path"):
            pool.scan_table("triples")


def test_scan_task_runs_in_worker(stored):
    path, session = stored
    with PartitionWorkerPool(dataset_path=path, num_workers=1) as pool:
        out = pool.scan_table("triples", epoch=session._journal_epoch)
        assert out["rows_scanned"] == 40
        assert out["epoch"] == session._journal_epoch
        assert len(out["relation"].rows) == 40


def test_query_task_matches_parent_session(stored):
    path, session = stored
    query = "SELECT * WHERE { ?a <follows> ?b . ?b <likes> ?w }"
    expected = session.query(query)
    with PartitionWorkerPool(dataset_path=path, num_workers=1) as pool:
        outcome = pool.run_query(query, epoch=session._journal_epoch)
        assert bag(outcome["result"].relation) == bag(expected.relation)
        assert outcome["epoch"] == session._journal_epoch
        assert outcome["fingerprint"]
        assert outcome["observed"]  # the worker observed real cardinalities


def test_worker_refreshes_on_epoch_advance(tmp_path):
    graph = Graph([Triple.of(f"u{i}", "p", f"v{i}") for i in range(10)])
    saver = S2RDFSession.from_graph(graph, num_partitions=2, journal_enabled=False)
    path = str(tmp_path / "dataset")
    saver.save_dataset(path)
    saver.close()
    session = S2RDFSession.open_dataset(path, journal_enabled=False)
    query = "SELECT * WHERE { ?x <p> ?y }"
    with PartitionWorkerPool(dataset_path=path, num_workers=1) as pool:
        before = pool.run_query(query, epoch=session._journal_epoch)
        assert len(before["result"].relation.rows) == 10
        # Append in the parent: the manifest epoch advances on disk; a task
        # carrying the new epoch makes the worker re-read the manifest.
        session.append_triples([Triple.of("extra", "p", "row")])
        after = pool.run_query(query, epoch=session._journal_epoch)
        assert len(after["result"].relation.rows) == 11
        assert after["epoch"] == session._journal_epoch
    session.close()


def test_start_brings_up_all_workers(stored):
    path, _ = stored
    pool = PartitionWorkerPool(dataset_path=path, num_workers=2)
    assert not pool.started
    pool.start()
    assert pool.started
    pool.close()
    assert not pool.started
