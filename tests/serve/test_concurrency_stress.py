"""Concurrency stress: many client threads through one scheduler while the
dataset grows underneath them via append_triples.

Every query runs against *some* committed manifest snapshot; the epoch
stamped on its result tells us which one.  The test precomputes the expected
bag of answers for every (query, epoch) pair by replaying the appends
serially, then checks each concurrent result against the reference for its
own epoch — catching torn reads (a query seeing half an append) as well as
stale-cache bugs (a query reporting epoch N with epoch N-1's rows)."""

import threading

import pytest

import repro
from repro.rdf.graph import Graph
from repro.rdf.triple import Triple


QUERIES = {
    "join": "SELECT * WHERE { ?a <follows> ?b . ?b <likes> ?w }",
    "scan": "SELECT * WHERE { ?a <likes> ?w }",
    "pushdown": "SELECT ?a WHERE { ?a <likes> <item1> }",
    "count": "SELECT (COUNT(*) AS ?n) WHERE { ?a <follows> ?b }",
}

CLIENTS = 6
ROUNDS = 5


def base_graph() -> Graph:
    triples = []
    for i in range(30):
        triples.append(Triple.of(f"user{i}", "follows", f"user{(i * 7 + 1) % 30}"))
        triples.append(Triple.of(f"user{i}", "likes", f"item{i % 5}"))
    return Graph(triples)


def batch(round_index: int):
    """The triples append round ``round_index`` commits (deterministic)."""
    base = 100 + round_index * 10
    return [
        Triple.of(f"user{base + j}", "follows", f"user{j}") for j in range(3)
    ] + [Triple.of(f"user{base + j}", "likes", f"item{j}") for j in range(3)]


def bag(relation):
    return sorted(map(repr, relation.rows))


@pytest.mark.parametrize("execution_mode", ["thread"])
def test_concurrent_queries_see_consistent_epochs(tmp_path, execution_mode):
    path = str(tmp_path / "dataset")
    repro.create(base_graph(), path=path, num_partitions=2).close()

    # Serial replay: reference bags per (query, epoch).  Epoch e holds the
    # base dataset plus append batches 0..e-1.
    reference = {}
    with repro.connect(path, journal_enabled=False) as serial:
        for epoch in range(ROUNDS + 1):
            assert serial._journal_epoch == epoch
            for name, text in QUERIES.items():
                reference[(name, epoch)] = bag(serial.query(text).relation)
            if epoch < ROUNDS:
                serial.append_triples(batch(epoch))
    # The appends really changed the answers (the test would be vacuous).
    assert reference[("scan", 0)] != reference[("scan", ROUNDS)]

    path2 = str(tmp_path / "dataset2")
    repro.create(base_graph(), path=path2, num_partitions=2).close()
    session = repro.connect(path2, execution_mode=execution_mode)
    failures = []
    stop = threading.Event()

    def client(index: int) -> None:
        names = sorted(QUERIES)
        step = 0
        while not stop.is_set():
            name = names[(index + step) % len(names)]
            step += 1
            handle = scheduler.submit(QUERIES[name])
            result = handle.result(timeout=120)
            expected = reference.get((name, result.epoch))
            if expected is None:
                failures.append((name, result.epoch, "unknown epoch"))
            elif bag(result.relation) != expected:
                failures.append((name, result.epoch, "bag mismatch"))

    with session:
        with session.serve() as scheduler:
            threads = [
                threading.Thread(target=client, args=(i,), name=f"stress-{i}")
                for i in range(CLIENTS)
            ]
            for thread in threads:
                thread.start()
            # Interleave the appends with the query storm: each commit
            # atomically advances the manifest epoch.
            for round_index in range(ROUNDS):
                report = session.append_triples(batch(round_index))
                assert report.triples_appended == len(batch(round_index))
            stop.set()
            for thread in threads:
                thread.join(timeout=120)
                assert not thread.is_alive()
            scheduler.drain(timeout=120)
        assert not failures, failures[:5]
        assert session._journal_epoch == ROUNDS

        # Every journaled record carries an epoch the manifest actually
        # committed, and the journal survives in the dataset directory.
        records = session.journal.records()
        assert records
        assert all(0 <= record.epoch <= ROUNDS for record in records)
        assert all(record.queue_ms is not None for record in records)
