"""Query-journal tests: template fingerprinting, record serialization, the
rotating JSONL store, cross-session persistence and the session hooks
(including manifest-epoch correctness around appends)."""

import json
import os

import pytest

from repro.core.session import S2RDFSession, SessionConfig
from repro.mappings.extvp import ExtVPLayout
from repro.obs.journal import (
    FLUSH_INTERVAL,
    TEMPLATES_FILE,
    JournalRecord,
    QueryJournal,
    fingerprint_query,
    fingerprint_text,
    journal_directory,
    open_dataset_journal,
    q_error,
    read_dataset_journal,
    template_text,
)
from repro.rdf.graph import Graph
from repro.rdf.triple import Triple
from repro.sparql.parser import parse_query


def small_session(**kwargs) -> S2RDFSession:
    triples = [Triple.of(f"u{i}", "follows", f"u{(i * 3) % 7}") for i in range(20)]
    triples += [Triple.of(f"u{i}", "likes", f"p{i % 3}") for i in range(0, 20, 2)]
    return S2RDFSession.from_graph(Graph(triples, name="mini"), **kwargs)


# --------------------------------------------------------------------------- #
# Template fingerprinting
# --------------------------------------------------------------------------- #
def test_alpha_renamed_queries_share_a_fingerprint():
    q1 = parse_query("SELECT ?x ?z WHERE { ?x <follows> ?y . ?y <likes> ?z }")
    q2 = parse_query("SELECT ?a ?c WHERE { ?a <follows> ?b . ?b <likes> ?c }")
    assert template_text(q1) == template_text(q2)
    assert fingerprint_query(q1) == fingerprint_query(q2)


def test_constants_are_stripped_but_predicates_kept():
    q1 = parse_query("SELECT ?f WHERE { <u1> <follows> ?f }")
    q2 = parse_query("SELECT ?f WHERE { <u2> <follows> ?f }")
    q3 = parse_query("SELECT ?f WHERE { <u1> <likes> ?f }")
    assert fingerprint_query(q1) == fingerprint_query(q2)
    assert fingerprint_query(q1) != fingerprint_query(q3)
    # The template shows the stripped constant and the verbatim predicate.
    assert template_text(q1) == "SELECT ?0 WHERE {* <follows> ?0}"


def test_variable_roles_distinguish_templates():
    subject = parse_query("SELECT ?x WHERE { ?x <follows> <u1> }")
    object_ = parse_query("SELECT ?x WHERE { <u1> <follows> ?x }")
    assert fingerprint_query(subject) != fingerprint_query(object_)


def test_filter_constants_and_variable_names_are_canonicalised():
    q1 = parse_query("SELECT ?x WHERE { ?x <age> ?a . FILTER(?a > 10) }")
    q2 = parse_query("SELECT ?p WHERE { ?p <age> ?b . FILTER(?b > 99) }")
    assert template_text(q1) == template_text(q2) == (
        "SELECT ?0 WHERE Filter[?1 > *]({?0 <age> ?1})"
    )
    # The operator stays structural: a different comparison is a new template.
    q3 = parse_query("SELECT ?x WHERE { ?x <age> ?a . FILTER(?a < 10) }")
    assert fingerprint_query(q1) != fingerprint_query(q3)


def test_solution_modifiers_are_part_of_the_template():
    plain = parse_query("SELECT ?x WHERE { ?x <follows> ?y }")
    distinct = parse_query("SELECT DISTINCT ?x WHERE { ?x <follows> ?y }")
    limited = parse_query("SELECT ?x WHERE { ?x <follows> ?y } LIMIT 5")
    fingerprints = {
        fingerprint_query(plain),
        fingerprint_query(distinct),
        fingerprint_query(limited),
    }
    assert len(fingerprints) == 3
    # ...but two different LIMIT values are the same SLICE template.
    limited10 = parse_query("SELECT ?x WHERE { ?x <follows> ?y } LIMIT 10")
    assert fingerprint_query(limited) == fingerprint_query(limited10)


def test_optional_and_union_structure_stays_distinct():
    join = parse_query("SELECT * WHERE { ?x <follows> ?y . ?y <likes> ?z }")
    optional = parse_query(
        "SELECT * WHERE { ?x <follows> ?y OPTIONAL { ?y <likes> ?z } }"
    )
    union = parse_query(
        "SELECT * WHERE { { ?x <follows> ?y } UNION { ?x <likes> ?y } }"
    )
    fingerprints = {
        fingerprint_query(join),
        fingerprint_query(optional),
        fingerprint_query(union),
    }
    assert len(fingerprints) == 3


def test_fingerprint_is_short_stable_hex():
    fp = fingerprint_text("SELECT ?0 WHERE {?0 <p> *}")
    assert len(fp) == 12
    assert fp == fingerprint_text("SELECT ?0 WHERE {?0 <p> *}")
    int(fp, 16)  # hex


# --------------------------------------------------------------------------- #
# Records
# --------------------------------------------------------------------------- #
def full_record() -> JournalRecord:
    return JournalRecord(
        fingerprint="abcdef012345",
        template='SELECT ?0 WHERE Filter[?1 = *]({?0 <say "hi"> ?1})',
        epoch=3,
        rows=42,
        wall_ms=12.346,  # serialized at millisecond precision (3 decimals)
        ts=1700000000.125,
        phase_ms={"parse": 0.111, "execute": 11.5},
        scanned_tables={"vp_likes": 10, 'odd"name\\tbl': 4},
        estimated_rows=50,
        estimate_q_error=1.1863,
        aqe_replans=1,
        aqe_skew_splits=2,
        broadcast_guard_trips=1,
        segments_scanned=7,
        segments_pruned=5,
        shuffled_bytes=1024,
        broadcast_bytes=2048,
        statically_empty=False,
    )


def test_json_line_round_trips_every_field():
    record = full_record()
    line = record.to_json_line()
    assert JournalRecord.from_json(json.loads(line)) == record
    # The hand-assembled line carries the same payload as the dict form.
    assert json.loads(line) == record.to_json()


def test_json_line_is_sparse_for_default_fields():
    record = JournalRecord(
        fingerprint="abc", template="", epoch=None, rows=0, wall_ms=1.0, ts=1.0
    )
    data = json.loads(record.to_json_line())
    assert data["epoch"] is None
    assert set(data) == {"ts", "fingerprint", "epoch", "rows", "wall_ms"}
    assert JournalRecord.from_json(data) == record


def test_json_line_can_omit_the_template():
    record = full_record()
    data = json.loads(record.to_json_line(include_template=False))
    assert "template" not in data
    restored = JournalRecord.from_json(data)
    assert restored.template == ""
    assert restored.fingerprint == record.fingerprint


def test_q_error_is_symmetric_and_smoothed():
    assert q_error(None, 10) is None
    assert q_error(-1, 10) is None  # UNKNOWN_ROWS sentinel
    assert q_error(10, 10) == 1.0
    assert q_error(99, 9) == pytest.approx(10.0)
    assert q_error(9, 99) == pytest.approx(10.0)
    assert q_error(0, 0) == 1.0  # +1 smoothing keeps zeros finite


# --------------------------------------------------------------------------- #
# The journal store
# --------------------------------------------------------------------------- #
def make_record(index: int, fingerprint: str = "fp0", template: str = "T") -> JournalRecord:
    return JournalRecord(
        fingerprint=fingerprint,
        template=template,
        epoch=0,
        rows=index,
        wall_ms=1.0,
        ts=float(index + 1),
    )


def test_journal_rejects_degenerate_caps():
    with pytest.raises(ValueError):
        QueryJournal(max_file_bytes=0)
    with pytest.raises(ValueError):
        QueryJournal(max_files=0)
    with pytest.raises(ValueError):
        QueryJournal(max_memory_records=0)


def test_in_memory_journal_is_a_bounded_ring():
    journal = QueryJournal(max_memory_records=5)
    for i in range(8):
        journal.append(make_record(i))
    records = journal.records()
    assert [r.rows for r in records] == [3, 4, 5, 6, 7]
    assert journal.appended_count == 8
    assert journal.file_count() == 0


def test_journal_renders_template_from_parsed_query():
    journal = QueryJournal()
    parsed = parse_query("SELECT ?x WHERE { ?x <follows> ?y }")
    journal.append(
        JournalRecord(fingerprint="", template="", epoch=None, rows=1, wall_ms=1.0),
        query=parsed,
    )
    (record,) = journal.records()
    assert record.template == template_text(parsed)
    assert record.fingerprint == fingerprint_query(parsed)
    assert record.ts > 0.0  # stamped on append


def test_persistent_journal_survives_reopening(tmp_path):
    directory = str(tmp_path / "journal")
    journal = QueryJournal(directory=directory)
    parsed = parse_query("SELECT ?x WHERE { ?x <follows> ?y }")
    for i in range(3):
        journal.append(make_record(i, fingerprint="", template=""), query=parsed)
    journal.close()

    reopened = QueryJournal(directory=directory)
    records = reopened.records()
    assert [r.rows for r in records] == [0, 1, 2]
    # Templates come back from the sidecar even though record lines omit them.
    assert all(r.template == template_text(parsed) for r in records)
    assert reopened.appended_count == 0  # counts this object's appends only
    reopened.append(make_record(3, fingerprint="", template=""), query=parsed)
    assert [r.rows for r in reopened.records()] == [0, 1, 2, 3]
    reopened.close()


def test_template_sidecar_stores_each_template_once(tmp_path):
    directory = str(tmp_path / "journal")
    journal = QueryJournal(directory=directory)
    parsed = parse_query("SELECT ?x WHERE { ?x <follows> ?y }")
    for i in range(10):
        journal.append(make_record(i, fingerprint="", template=""), query=parsed)
    journal.close()
    with open(os.path.join(directory, TEMPLATES_FILE), encoding="utf-8") as handle:
        entries = [json.loads(line) for line in handle if line.strip()]
    assert len(entries) == 1
    assert entries[0]["template"] == template_text(parsed)
    # ...and the record lines themselves never carry the template text.
    with open(os.path.join(directory, "queries-00001.jsonl"), encoding="utf-8") as handle:
        assert all("template" not in json.loads(line) for line in handle if line.strip())


def test_reads_are_read_your_writes_despite_buffering(tmp_path):
    journal = QueryJournal(directory=str(tmp_path / "journal"))
    appended = FLUSH_INTERVAL // 2  # below the flush interval
    for i in range(appended):
        journal.append(make_record(i))
    assert len(journal.records()) == appended
    journal.close()


def test_rotation_caps_bytes_per_file_and_prunes_oldest(tmp_path):
    directory = str(tmp_path / "journal")
    journal = QueryJournal(directory=directory, max_file_bytes=300, max_files=3)
    for i in range(60):
        journal.append(make_record(i))
    assert journal.file_count() == 3
    for name in os.listdir(directory):
        if name.startswith("queries-"):
            assert os.path.getsize(os.path.join(directory, name)) <= 300 + 120
    records = journal.records()
    # Oldest files were pruned: the survivors are a strict, contiguous tail.
    rows = [r.rows for r in records]
    assert rows == list(range(60 - len(rows), 60))
    assert 0 < len(rows) < 60
    journal.close()


def test_corrupt_and_truncated_lines_are_skipped(tmp_path):
    directory = str(tmp_path / "journal")
    journal = QueryJournal(directory=directory)
    journal.append(make_record(0))
    journal.append(make_record(1))
    journal.close()
    path = os.path.join(directory, "queries-00001.jsonl")
    with open(path, "a", encoding="utf-8") as handle:
        handle.write("this is not json\n")
        handle.write('{"rows": 99}\n')  # parseable but missing required keys
        handle.write('{"ts":3.0,"fingerprint":"fp0","epoch":0,"rows":2,"wall_ms":1.0}\n')
        handle.write('{"ts":4.0,"fingerprint":"fp0","ep')  # truncated write
    records = QueryJournal(directory=directory).records()
    assert [r.rows for r in records] == [0, 1, 2]


def test_read_dataset_journal_without_a_journal_is_empty(tmp_path):
    assert read_dataset_journal(str(tmp_path / "nowhere")) == []


# --------------------------------------------------------------------------- #
# Session integration
# --------------------------------------------------------------------------- #
def test_ephemeral_session_journals_in_memory():
    with small_session(num_partitions=2) as session:
        session.query("SELECT ?f WHERE { <u1> <follows> ?f }")
        session.query("SELECT ?f WHERE { <u2> <follows> ?f }")
        session.query("SELECT ?x ?p WHERE { ?x <follows> ?y . ?y <likes> ?p }")
        records = session.journal.records()
    assert len(records) == 3
    assert not session.journal.persistent
    # The two instantiations of one template share a fingerprint.
    assert records[0].fingerprint == records[1].fingerprint
    assert records[0].fingerprint != records[2].fingerprint
    for record in records:
        assert record.epoch is None  # never touched a stored dataset
        assert record.wall_ms > 0.0
        assert record.scanned_tables
        assert set(record.phase_ms) == {"parse", "compile", "plan", "execute"}
        assert record.estimate_q_error is None or record.estimate_q_error >= 1.0


def test_journal_can_be_disabled():
    with small_session(journal_enabled=False) as session:
        result = session.query("SELECT ?f WHERE { <u1> <follows> ?f }")
        assert session.journal is None
        assert result.metrics is not None


def test_save_dataset_migrates_memory_records_and_stamps_epochs(tmp_path):
    path = str(tmp_path / "ds")
    with small_session(num_partitions=2) as session:
        session.query("SELECT ?f WHERE { <u1> <follows> ?f }")  # pre-save
        session.save_dataset(path)
        session.query("SELECT ?f WHERE { <u2> <follows> ?f }")  # epoch 0
        session.append_triples([Triple.of("u99", "follows", "u1")])
        session.query("SELECT ?f WHERE { <u3> <follows> ?f }")  # epoch 1

    records = read_dataset_journal(path)
    assert [r.epoch for r in records] == [None, 0, 1]
    assert session.journal.persistent
    assert os.path.isdir(journal_directory(path))

    # A fresh session over the same dataset appends to the same journal.
    with S2RDFSession.open_dataset(path) as reopened:
        reopened.query("SELECT ?f WHERE { <u4> <follows> ?f }")
    records = read_dataset_journal(path)
    assert [r.epoch for r in records] == [None, 0, 1, 1]
    # All four are instantiations of one template, written by two sessions.
    assert len({r.fingerprint for r in records}) == 1
    assert all(r.template for r in records)


def test_mid_append_queries_carry_the_pre_append_epoch(tmp_path, monkeypatch):
    """The journal epoch advances only after the manifest swap: a query that
    runs while an append is being written still executed against the old
    epoch's data, and its record must say so."""
    import repro.store.writer as writer_module

    path = str(tmp_path / "ds")
    session = small_session(num_partitions=2)
    session.save_dataset(path)
    real_write_manifest = writer_module.write_manifest
    seen = {}

    def write_manifest_with_concurrent_query(target, manifest, *args, **kwargs):
        # Runs at the append's commit point, *before* the session refreshes:
        # a concurrent reader would observe exactly this window.
        if "epoch" not in seen:
            result = session.query("SELECT ?f WHERE { <u7> <follows> ?f }")
            assert result is not None
            seen["epoch"] = session.journal.records()[-1].epoch
        return real_write_manifest(target, manifest, *args, **kwargs)

    monkeypatch.setattr(writer_module, "write_manifest", write_manifest_with_concurrent_query)
    session.append_triples([Triple.of("u98", "follows", "u2")])
    monkeypatch.undo()

    assert seen["epoch"] == 0  # the old epoch, not the appended one
    session.query("SELECT ?f WHERE { <u8> <follows> ?f }")
    assert session.journal.records()[-1].epoch == 1
    session.close()


def test_statically_empty_queries_are_journaled():
    with small_session() as session:
        session.query("SELECT ?x WHERE { ?x <no-such-predicate> ?y }")
        (record,) = session.journal.records()
    assert record.statically_empty
    assert record.rows == 0


def test_session_config_direct_construction_defaults_journal_on():
    layout = ExtVPLayout(selectivity_threshold=1.0)
    layout.build(Graph([Triple.of("a", "p", "b")], name="t"))
    with S2RDFSession(layout, config=SessionConfig()) as session:
        session.query("SELECT ?x WHERE { ?x <p> ?y }")
        assert session.journal.record_count() == 1
