"""Tracer unit tests: nesting, the zero-allocation disabled path, and
Chrome trace-event export validity."""

import json
import threading

import pytest

from repro.obs.trace import NULL_SPAN, NULL_TRACER, Span, Tracer


# --------------------------------------------------------------------------- #
# Disabled path: the zero-allocation contract
# --------------------------------------------------------------------------- #
def test_disabled_tracer_returns_the_shared_null_span():
    tracer = Tracer(enabled=False)
    # Identity, not just equality: span() must not allocate when disabled.
    assert tracer.span("anything", category="query", rows=3) is NULL_SPAN
    assert tracer.span("other") is NULL_SPAN
    assert tracer.current() is NULL_SPAN


def test_null_span_operations_are_noops():
    with NULL_SPAN as span:
        assert span is NULL_SPAN
        span.set(rows=10, table="VP_p")
        span.event("aqe-replan", reason="stale stats")
    assert not NULL_SPAN.enabled


def test_disabled_tracer_records_nothing():
    tracer = Tracer(enabled=False)
    with tracer.span("query"):
        with tracer.span("execute"):
            tracer.current().event("skipped")
    assert tracer.finished_spans() == []
    assert tracer.summary() == {"spans": 0, "events": 0, "spans_by_category": {}}
    assert tracer.to_chrome_trace()["traceEvents"] == []


def test_null_tracer_singleton_is_disabled():
    assert not NULL_TRACER.enabled
    assert NULL_TRACER.span("x") is NULL_SPAN


# --------------------------------------------------------------------------- #
# Nesting
# --------------------------------------------------------------------------- #
def test_spans_nest_automatically_on_one_thread():
    tracer = Tracer(enabled=True)
    with tracer.span("query") as root:
        with tracer.span("parse"):
            pass
        with tracer.span("execute") as execute:
            assert tracer.current() is execute
            with tracer.span("scan"):
                pass
            with tracer.span("join"):
                pass
    spans = {span.name: span for span in tracer.finished_spans()}
    assert spans["parse"].parent_id == root.span_id
    assert spans["execute"].parent_id == root.span_id
    assert spans["scan"].parent_id == spans["execute"].span_id
    assert spans["join"].parent_id == spans["execute"].span_id
    assert root.parent_id is None
    assert sorted(s.name for s in tracer.children_of(root)) == ["execute", "parse"]
    assert [s.name for s in tracer.children_of(None)] == ["query"]


def test_explicit_parent_crosses_threads():
    """Pool tasks pass parent= explicitly; the tree survives the thread hop."""
    tracer = Tracer(enabled=True)
    with tracer.span("shuffle-exchange", category="exchange") as exchange:

        def task(partition):
            with tracer.span("join-task", category="task", parent=exchange, partition=partition):
                pass

        threads = [threading.Thread(target=task, args=(i,)) for i in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    tasks = tracer.find("join-task")
    assert len(tasks) == 3
    assert all(span.parent_id == exchange.span_id for span in tasks)
    # Each task recorded the worker thread it ran on, not the caller's.
    assert all(span.thread_id != exchange.thread_id for span in tasks)
    assert sorted(span.attrs["partition"] for span in tasks) == [0, 1, 2]


def test_current_and_find_and_clear():
    tracer = Tracer(enabled=True)
    assert tracer.current() is NULL_SPAN
    with tracer.span("a"):
        pass
    with tracer.span("a"):
        pass
    assert len(tracer.find("a")) == 2
    assert tracer.find("missing") == []
    tracer.clear()
    assert tracer.finished_spans() == []


def test_span_timing_and_events():
    tracer = Tracer(enabled=True)
    with tracer.span("work", category="exchange", tables=2) as span:
        span.event("aqe-skew-split", partition=3, factor=4)
        span.set(rows=17)
    (finished,) = tracer.finished_spans()
    assert finished.duration_us >= 0
    assert finished.start_us > 0
    assert finished.attrs == {"tables": 2, "rows": 17}
    ((name, ts, attrs),) = finished.events
    assert name == "aqe-skew-split"
    assert finished.start_us <= ts <= finished.start_us + finished.duration_us
    assert attrs == {"partition": 3, "factor": 4}


def test_summary_counts_by_category():
    tracer = Tracer(enabled=True)
    with tracer.span("query", category="query") as span:
        span.event("one")
        with tracer.span("scan", category="operator"):
            pass
        with tracer.span("join", category="operator"):
            pass
    summary = tracer.summary()
    assert summary["spans"] == 3
    assert summary["events"] == 1
    assert summary["spans_by_category"] == {"query": 1, "operator": 2}


# --------------------------------------------------------------------------- #
# Chrome trace-event export
# --------------------------------------------------------------------------- #
def test_chrome_trace_structure(tmp_path):
    tracer = Tracer(enabled=True)
    with tracer.span("query", category="query", sparql="SELECT *") as root:
        root.event("aqe-replan", reason="stale stats")
        with tracer.span("execute", category="query"):
            pass

    trace = tracer.to_chrome_trace()
    assert set(trace) == {"traceEvents", "displayTimeUnit"}
    assert trace["displayTimeUnit"] == "ms"
    events = trace["traceEvents"]
    # 2 complete spans + 1 instant event.
    assert len(events) == 3
    for event in events:
        assert {"name", "cat", "ph", "ts", "pid", "tid", "args"} <= set(event)
        assert event["ph"] in {"X", "i"}
    complete = [e for e in events if e["ph"] == "X"]
    instants = [e for e in events if e["ph"] == "i"]
    assert {e["name"] for e in complete} == {"query", "execute"}
    assert all("dur" in e and e["dur"] >= 0 for e in complete)
    (instant,) = instants
    assert instant["name"] == "aqe-replan"
    assert instant["s"] == "t"  # thread-scoped instant
    assert instant["args"] == {"reason": "stale stats"}
    # Events are sorted by timestamp for the viewer.
    assert [e["ts"] for e in events] == sorted(e["ts"] for e in events)
    # parent_span_id links the tree inside args.
    by_name = {e["name"]: e for e in complete}
    assert by_name["execute"]["args"]["parent_span_id"] == by_name["query"]["args"]["span_id"]

    # The written file is valid strict JSON.
    path = tmp_path / "trace.json"
    assert tracer.write_chrome_trace(str(path)) == str(path)
    loaded = json.loads(path.read_text(encoding="utf-8"))
    assert loaded == trace


def test_chrome_trace_coerces_non_json_args():
    tracer = Tracer(enabled=True)

    class Opaque:
        def __repr__(self):
            return "<opaque>"

    with tracer.span("query", payload=Opaque(), fine=1.5):
        pass
    (event,) = tracer.to_chrome_trace()["traceEvents"]
    assert event["args"]["payload"] == "<opaque>"
    assert event["args"]["fine"] == 1.5
    json.dumps(event)  # must be serialisable


def test_explicit_parent_accepts_null_span():
    """Sites that pass tracer.current() as parent= work when tracing was on
    in the caller but the parent happened to be NULL_SPAN."""
    tracer = Tracer(enabled=True)
    with tracer.span("orphan", parent=NULL_SPAN) as span:
        assert isinstance(span, Span)
    (finished,) = tracer.finished_spans()
    assert finished.parent_id is None


def test_span_ids_are_unique_across_threads():
    tracer = Tracer(enabled=True)
    errors = []

    def worker():
        try:
            for _ in range(50):
                with tracer.span("w"):
                    pass
        except Exception as error:  # pragma: no cover - defensive
            errors.append(error)

    threads = [threading.Thread(target=worker) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    spans = tracer.finished_spans()
    assert len(spans) == 200
    assert len({span.span_id for span in spans}) == 200


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
