"""Workload analyzer tests: synthetic-record aggregation rules plus the
50-query golden test — a mixed-template workload run through a real session
whose hot-template and table-reuse report must match ground truth exactly."""

import pytest

from repro.core.session import S2RDFSession
from repro.obs.journal import JournalRecord, fingerprint_query
from repro.obs.workload import (
    Q_ERROR_BUCKETS,
    WorkloadAnalysis,
    analyze_dataset,
    analyze_journal,
)
from repro.rdf.graph import Graph
from repro.rdf.triple import Triple
from repro.sparql.parser import parse_query


def record(
    fingerprint: str,
    wall_ms: float = 1.0,
    rows: int = 1,
    epoch=0,
    scanned_tables=None,
    estimate_q_error=None,
    **kwargs,
) -> JournalRecord:
    return JournalRecord(
        fingerprint=fingerprint,
        template=f"T:{fingerprint}",
        epoch=epoch,
        rows=rows,
        wall_ms=wall_ms,
        ts=1.0,
        scanned_tables=dict(scanned_tables or {}),
        estimate_q_error=estimate_q_error,
        **kwargs,
    )


# --------------------------------------------------------------------------- #
# Aggregation rules on synthetic records
# --------------------------------------------------------------------------- #
def test_empty_journal_analyzes_to_an_empty_report():
    analysis = analyze_journal([])
    assert analysis.total_queries == 0
    assert analysis.hot_templates == []
    assert analysis.advice == []
    assert "none recorded" in analysis.render_text()


def test_hot_templates_rank_by_count_then_time_then_fingerprint():
    records = (
        [record("bb", wall_ms=1.0)] * 3
        + [record("aa", wall_ms=5.0)] * 2
        + [record("cc", wall_ms=9.0)] * 2
    )
    analysis = analyze_journal(records, top_k=2)
    assert [t.fingerprint for t in analysis.hot_templates] == ["bb", "cc"]
    assert analysis.hot_templates[0].count == 3
    assert analysis.total_queries == 7
    assert analysis.total_wall_ms == pytest.approx(3 + 10 + 18)


def test_table_reuse_counts_queries_templates_and_rows():
    records = [
        record("aa", scanned_tables={"vp_likes": 10, "vp_follows": 5}),
        record("aa", scanned_tables={"vp_likes": 20}),
        record("bb", scanned_tables={"vp_likes": 1}),
    ]
    analysis = analyze_journal(records)
    likes = next(t for t in analysis.table_reuse if t.table == "vp_likes")
    assert (likes.query_count, likes.rows_scanned, likes.template_count) == (3, 31, 2)
    follows = next(t for t in analysis.table_reuse if t.table == "vp_follows")
    assert (follows.query_count, follows.template_count) == (1, 1)
    assert analysis.table_reuse[0].table == "vp_likes"  # ranked by query count


def test_q_error_histogram_buckets_and_max():
    records = [
        record("aa", estimate_q_error=1.0),
        record("aa", estimate_q_error=1.4),
        record("aa", estimate_q_error=3.0),
        record("aa", estimate_q_error=100.0),
        record("aa"),  # no estimate: excluded from the histogram
    ]
    analysis = analyze_journal(records)
    assert analysis.estimated_queries == 4
    assert analysis.max_q_error == 100.0
    assert analysis.q_error_histogram == {
        "exact": 1,
        "(1, 1.5]": 1,
        "(2, 4]": 1,
        f"> {Q_ERROR_BUCKETS[-1]:g}": 1,
    }


def test_result_cache_advice_requires_stable_rows_on_one_epoch():
    stable = [record("aa", rows=7, epoch=2)] * 3
    unstable = [record("bb", rows=i, epoch=2) for i in range(3)]
    split_epochs = [record("cc", rows=7, epoch=e) for e in (0, 1, 2)]
    analysis = analyze_journal(stable + unstable + split_epochs)
    cache = [c for c in analysis.advice if c.kind == "result-cache"]
    assert [(c.key, c.epoch, c.count) for c in cache] == [("aa", 2, 3)]


def test_hot_table_advice_requires_reuse_across_templates():
    shared = [
        record("aa", scanned_tables={"vp_hot": 5}),
        record("bb", scanned_tables={"vp_hot": 5}),
        record("cc", scanned_tables={"vp_hot": 5, "vp_single": 1}),
    ]
    analysis = analyze_journal(shared, min_cache_count=99)
    hot = [c for c in analysis.advice if c.kind == "hot-table"]
    assert [c.key for c in hot] == ["vp_hot"]  # vp_single: one template only
    assert hot[0].count == 3


def test_replans_and_guard_trips_are_totalled():
    records = [
        record("aa", aqe_replans=2, broadcast_guard_trips=1),
        record("aa", aqe_replans=1),
    ]
    analysis = analyze_journal(records)
    assert (analysis.aqe_replans, analysis.guard_trips) == (3, 1)
    assert analysis.hot_templates[0].replans == 3
    assert analysis.hot_templates[0].guard_trips == 1


def test_as_dict_round_trips_through_render_text():
    analysis = analyze_journal([record("aa", estimate_q_error=2.5)] * 4)
    data = analysis.as_dict()
    assert data["total_queries"] == 4
    assert data["hot_templates"][0]["fingerprint"] == "aa"
    text = analysis.render_text()
    assert "aa  x4" in text
    assert "Materialization advice" in text
    assert isinstance(analysis, WorkloadAnalysis)


# --------------------------------------------------------------------------- #
# The 50-query golden test
# --------------------------------------------------------------------------- #
TEMPLATE_A = "SELECT ?f ?p WHERE {{ <{user}> <follows> ?f . ?f <likes> ?p }}"
TEMPLATE_B = "SELECT ?u WHERE {{ ?u <likes> <{product}> }}"
TEMPLATE_C = "SELECT ?a ?b WHERE {{ ?a <follows> ?b . ?b <follows> <{user}> }}"


def golden_graph() -> Graph:
    triples = [Triple.of(f"u{i}", "follows", f"u{(i * 3) % 10}") for i in range(30)]
    triples += [Triple.of(f"u{i}", "likes", f"p{i % 4}") for i in range(0, 30, 2)]
    return Graph(triples, name="golden")


def golden_workload():
    """50 queries: 25 + 15 + 10 instantiations of three templates."""
    queries = [TEMPLATE_A.format(user=f"u{i % 9}") for i in range(25)]
    queries += [TEMPLATE_B.format(product=f"p{i % 4}") for i in range(15)]
    queries += [TEMPLATE_C.format(user=f"u{i % 7}") for i in range(10)]
    return queries


def test_fifty_query_workload_matches_ground_truth_exactly(tmp_path):
    queries = golden_workload()
    assert len(queries) == 50

    # Ground truth, computed independently of the journal: fingerprints from
    # the public fingerprint_query(), per-table demand from each result's own
    # execution metrics.
    expected_counts = {}
    expected_tables = {}
    expected_templates_per_table = {}
    path = str(tmp_path / "golden-ds")
    with S2RDFSession.from_graph(golden_graph(), num_partitions=2) as session:
        session.save_dataset(path)
        for query_text in queries:
            fingerprint = fingerprint_query(parse_query(query_text))
            expected_counts[fingerprint] = expected_counts.get(fingerprint, 0) + 1
            result = session.query(query_text)
            for table, rows in result.metrics.scanned_tables.items():
                count, total = expected_tables.get(table, (0, 0))
                expected_tables[table] = (count + 1, total + rows)
                expected_templates_per_table.setdefault(table, set()).add(fingerprint)

    assert sorted(expected_counts.values(), reverse=True) == [25, 15, 10]

    analysis = analyze_dataset(path, top_k=3)
    assert analysis.total_queries == 50

    # Exact top-k: the three templates, in count order, with exact counts.
    ranked = [(t.fingerprint, t.count) for t in analysis.hot_templates]
    assert ranked == sorted(
        expected_counts.items(), key=lambda item: (-item[1], item[0])
    )
    for stats in analysis.hot_templates:
        assert stats.template  # rehydrated from the sidecar
        assert stats.epochs == [0]

    # Exact per-table reuse: query counts, tuples read and template counts.
    observed = {t.table: (t.query_count, t.rows_scanned) for t in analysis.table_reuse}
    assert observed == expected_tables
    for reuse in analysis.table_reuse:
        assert reuse.template_count == len(expected_templates_per_table[reuse.table])

    # Every query had a root estimate on this workload.
    assert analysis.estimated_queries == 50
    assert analysis.max_q_error >= 1.0
