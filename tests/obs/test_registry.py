"""MetricsRegistry unit tests: counters, bounded histograms, JSON snapshots
and Prometheus text exposition."""

import json

import pytest

from repro.obs.registry import DEFAULT_BUCKET_BOUNDS, Counter, Histogram, MetricsRegistry


# --------------------------------------------------------------------------- #
# Counter
# --------------------------------------------------------------------------- #
def test_counter_increments_and_rejects_negative():
    counter = Counter("queries_total", help="queries served")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    with pytest.raises(ValueError, match="only go up"):
        counter.inc(-1)
    assert counter.value == 5


# --------------------------------------------------------------------------- #
# Histogram
# --------------------------------------------------------------------------- #
def test_histogram_rejects_bad_bounds():
    with pytest.raises(ValueError):
        Histogram("h", bounds=())
    with pytest.raises(ValueError):
        Histogram("h", bounds=(5.0, 1.0))


def test_histogram_buckets_are_cumulative():
    histogram = Histogram("latency_ms", bounds=(1.0, 10.0, 100.0))
    for value in (0.5, 0.7, 5.0, 50.0, 5000.0):
        histogram.observe(value)
    snapshot = histogram.snapshot()
    assert snapshot["count"] == 5
    assert snapshot["sum"] == pytest.approx(5056.2)
    assert snapshot["min"] == 0.5
    assert snapshot["max"] == 5000.0
    assert snapshot["mean"] == pytest.approx(5056.2 / 5)
    # Cumulative: each bucket includes everything at or below its bound.
    assert snapshot["buckets"] == {"1": 2, "10": 3, "100": 4, "+Inf": 5}


def test_histogram_boundary_values_land_in_their_bucket():
    histogram = Histogram("h", bounds=(1.0, 10.0))
    histogram.observe(1.0)  # le="1" bucket includes the bound itself
    histogram.observe(10.0)
    assert histogram.snapshot()["buckets"] == {"1": 1, "10": 2, "+Inf": 2}


def test_empty_histogram_snapshot():
    snapshot = Histogram("h", bounds=(1.0,)).snapshot()
    assert snapshot == {
        "count": 0,
        "sum": 0.0,
        "min": None,
        "max": None,
        "mean": 0.0,
        "buckets": {"1": 0, "+Inf": 0},
    }


def test_default_bounds_are_ascending():
    assert list(DEFAULT_BUCKET_BOUNDS) == sorted(DEFAULT_BUCKET_BOUNDS)
    assert len(DEFAULT_BUCKET_BOUNDS) > 10


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #
def test_registry_lazily_creates_and_reuses_instruments():
    registry = MetricsRegistry()
    registry.inc("s2rdf_queries_total")
    registry.inc("s2rdf_queries_total", 2)
    assert registry.counter_value("s2rdf_queries_total") == 3
    assert registry.counter_value("never_touched") == 0
    registry.observe("s2rdf_query_wall_ms", 12.5)
    registry.observe("s2rdf_query_wall_ms", 80.0)
    assert registry.counter("s2rdf_queries_total") is registry.counter("s2rdf_queries_total")
    assert registry.histogram("s2rdf_query_wall_ms") is registry.histogram("s2rdf_query_wall_ms")


def test_registry_rejects_cross_type_name_collisions():
    registry = MetricsRegistry()
    registry.inc("metric_a")
    registry.observe("metric_b", 1.0)
    with pytest.raises(ValueError, match="already registered as a counter"):
        registry.histogram("metric_a")
    with pytest.raises(ValueError, match="already registered as a histogram"):
        registry.counter("metric_b")


def test_snapshot_and_to_json():
    registry = MetricsRegistry()
    registry.inc("b_counter", 7)
    registry.inc("a_counter")
    registry.observe("wall_ms", 3.0, bounds=(1.0, 10.0))
    snapshot = registry.snapshot()
    assert snapshot["counters"] == {"a_counter": 1, "b_counter": 7}
    assert snapshot["histograms"]["wall_ms"]["count"] == 1
    assert snapshot["histograms"]["wall_ms"]["buckets"] == {"1": 0, "10": 1, "+Inf": 1}
    # to_json round-trips as strict JSON.
    assert json.loads(registry.to_json()) == snapshot


def test_render_prometheus_format():
    registry = MetricsRegistry()
    registry.inc("s2rdf_queries_total", 3, help="queries served")
    registry.observe("s2rdf_query_wall_ms", 0.4, bounds=(1.0, 10.0), help="query wall clock")
    registry.observe("s2rdf_query_wall_ms", 7.0, bounds=(1.0, 10.0))
    registry.observe("s2rdf_query_wall_ms", 99.0, bounds=(1.0, 10.0))
    text = registry.render_prometheus()
    lines = text.splitlines()
    assert "# HELP s2rdf_queries_total queries served" in lines
    assert "# TYPE s2rdf_queries_total counter" in lines
    assert "s2rdf_queries_total 3" in lines
    assert "# TYPE s2rdf_query_wall_ms histogram" in lines
    assert 's2rdf_query_wall_ms_bucket{le="1"} 1' in lines
    assert 's2rdf_query_wall_ms_bucket{le="10"} 2' in lines
    assert 's2rdf_query_wall_ms_bucket{le="+Inf"} 3' in lines
    assert "s2rdf_query_wall_ms_sum 106.4" in lines
    assert "s2rdf_query_wall_ms_count 3" in lines
    assert text.endswith("\n")


def test_registry_is_thread_safe():
    import threading

    registry = MetricsRegistry()

    def worker():
        for _ in range(500):
            registry.inc("hits")
            registry.observe("values", 1.0, bounds=(10.0,))

    threads = [threading.Thread(target=worker) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert registry.counter_value("hits") == 2000
    assert registry.histogram("values").count == 2000


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
