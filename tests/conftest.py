"""Shared fixtures: the paper's running-example graph G1, query Q1, and a
small WatDiv-like dataset reused across integration tests.

Setting ``FAIL_ON_SKIP=1`` turns every skipped test into a failure — CI uses
it on the differential correctness harness, whose silent skipping would void
the bag-equality guarantee the incremental store relies on."""

from __future__ import annotations

import os

import pytest

from repro.rdf.graph import Graph
from repro.rdf.terms import IRI
from repro.rdf.triple import Triple
from repro.watdiv.generator import generate_dataset


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    outcome = yield
    report = outcome.get_result()
    if report.skipped and os.environ.get("FAIL_ON_SKIP"):
        report.outcome = "failed"
        report.longrepr = (
            f"{item.nodeid}: test was skipped but FAIL_ON_SKIP is set "
            f"(skip reason: {call.excinfo.value if call.excinfo else 'unknown'})"
        )


def iri(name: str) -> IRI:
    return IRI(name)


@pytest.fixture(scope="session")
def example_graph() -> Graph:
    """The paper's running-example graph G1 (Fig. 1)."""
    triples = [
        Triple(iri("A"), iri("follows"), iri("B")),
        Triple(iri("B"), iri("follows"), iri("C")),
        Triple(iri("B"), iri("follows"), iri("D")),
        Triple(iri("C"), iri("follows"), iri("D")),
        Triple(iri("A"), iri("likes"), iri("I1")),
        Triple(iri("A"), iri("likes"), iri("I2")),
        Triple(iri("C"), iri("likes"), iri("I2")),
    ]
    return Graph(triples, name="G1")


#: The paper's running-example query Q1 (Fig. 2), in simplified notation.
QUERY_Q1 = """
SELECT * WHERE {
  ?x <likes> ?w .
  ?x <follows> ?y .
  ?y <follows> ?z .
  ?z <likes> ?w .
}
"""


@pytest.fixture(scope="session")
def query_q1() -> str:
    return QUERY_Q1


@pytest.fixture(scope="session")
def small_dataset():
    """A small WatDiv-like dataset shared by the integration tests."""
    return generate_dataset(scale_factor=1.0, seed=7)


@pytest.fixture(scope="session")
def small_graph(small_dataset):
    return small_dataset.graph
