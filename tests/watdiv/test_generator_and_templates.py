"""Tests for the WatDiv-like schema, generator and query templates."""

import numpy as np
import pytest

from repro.rdf.terms import IRI
from repro.watdiv.basic_queries import BASIC_TEMPLATES, basic_template, basic_templates_by_category
from repro.watdiv.generator import WatDivGenerator, generate_dataset
from repro.watdiv.incremental_queries import INCREMENTAL_TEMPLATES, incremental_templates_by_type
from repro.watdiv.schema import (
    ENTITY_COUNTS,
    FOLLOWS,
    FRIEND_OF,
    LIKES,
    WATDIV_SCHEMA,
    EntityClass,
    PredicateSpec,
    entity_iri,
)
from repro.watdiv.selectivity_queries import SELECTIVITY_TEMPLATES
from repro.watdiv.template import QueryTemplate, instantiate_many, instantiate_template


class TestSchema:
    def test_entity_iri(self):
        assert entity_iri(EntityClass.USER, 7).value.endswith("User7")

    def test_spec_requires_exactly_one_mode(self):
        with pytest.raises(ValueError):
            PredicateSpec(FOLLOWS, EntityClass.USER, EntityClass.USER, probability=0.5, mean_degree=2.0)
        with pytest.raises(ValueError):
            PredicateSpec(FOLLOWS, EntityClass.USER, EntityClass.USER)

    def test_every_entity_class_has_counts(self):
        assert set(ENTITY_COUNTS) == set(EntityClass)

    def test_schema_references_known_classes(self):
        for spec in WATDIV_SCHEMA:
            assert spec.source in ENTITY_COUNTS
            if spec.target is not None:
                assert spec.target in ENTITY_COUNTS


class TestGenerator:
    def test_deterministic_for_same_seed(self):
        first = generate_dataset(scale_factor=0.5, seed=3).graph
        second = generate_dataset(scale_factor=0.5, seed=3).graph
        assert first == second

    def test_different_seed_changes_data(self):
        first = generate_dataset(scale_factor=0.5, seed=3).graph
        second = generate_dataset(scale_factor=0.5, seed=4).graph
        assert first != second

    def test_scale_factor_grows_graph(self):
        small = generate_dataset(scale_factor=0.5, seed=3).graph
        large = generate_dataset(scale_factor=2.0, seed=3).graph
        assert len(large) > 2 * len(small)

    def test_invalid_scale_factor(self):
        with pytest.raises(ValueError):
            WatDivGenerator(scale_factor=0)

    def test_predicate_mix_dominated_by_social_edges(self, small_graph):
        histogram = small_graph.predicate_histogram()
        total = len(small_graph)
        assert histogram[FRIEND_OF] / total > 0.2
        assert histogram[FOLLOWS] / total > 0.15
        assert histogram[LIKES] / total < 0.05

    def test_selectivity_structure_for_st_queries(self, small_graph):
        """~90 % of users have an email, ~5 % a job title (drives ST-1-x)."""
        from repro.watdiv.schema import EMAIL, JOB_TITLE

        user_count = len({t.subject for t in small_graph.triples(predicate=FRIEND_OF)})
        email_count = small_graph.predicate_count(EMAIL)
        job_count = small_graph.predicate_count(JOB_TITLE)
        assert email_count > 3 * job_count
        assert user_count > 0

    def test_entities_listing_and_sampling(self, small_dataset):
        users = small_dataset.entities(EntityClass.USER)
        assert len(users) == small_dataset.entity_counts[EntityClass.USER]
        rng = np.random.default_rng(0)
        sample = small_dataset.sample_entity(EntityClass.RETAILER, rng)
        assert sample in small_dataset.entities(EntityClass.RETAILER)

    def test_every_review_has_reviewer_and_product(self, small_graph):
        from repro.watdiv.schema import HAS_REVIEW, REVIEWER

        reviews_with_product = {t.object for t in small_graph.triples(predicate=HAS_REVIEW)}
        reviews_with_reviewer = {t.subject for t in small_graph.triples(predicate=REVIEWER)}
        assert reviews_with_reviewer <= reviews_with_product | reviews_with_reviewer
        assert len(reviews_with_product) > 0

    def test_constants_used_by_queries_exist(self, small_dataset):
        # wsdbm:Product0, wsdbm:Country1/5, wsdbm:Language0, wsdbm:Role2, wsdbm:ProductCategory2
        counts = small_dataset.entity_counts
        assert counts[EntityClass.PRODUCT] > 0
        assert counts[EntityClass.COUNTRY] > 5
        assert counts[EntityClass.LANGUAGE] > 0
        assert counts[EntityClass.ROLE] > 2
        assert counts[EntityClass.PRODUCT_CATEGORY] > 2


class TestTemplates:
    def test_basic_template_inventory(self):
        assert len(BASIC_TEMPLATES) == 20
        grouped = basic_templates_by_category()
        assert len(grouped["L"]) == 5
        assert len(grouped["S"]) == 7
        assert len(grouped["F"]) == 5
        assert len(grouped["C"]) == 3

    def test_selectivity_template_inventory(self):
        assert len(SELECTIVITY_TEMPLATES) == 20

    def test_incremental_template_inventory(self):
        assert len(INCREMENTAL_TEMPLATES) == 18
        grouped = incremental_templates_by_type()
        assert set(grouped) == {"IL-1", "IL-2", "IL-3"}
        assert all(len(templates) == 6 for templates in grouped.values())

    def test_unknown_template_lookup(self):
        with pytest.raises(KeyError):
            basic_template("S99")

    def test_placeholders_detected(self):
        template = basic_template("S1")
        assert template.placeholders == ["v2"]
        assert template.is_parameterized()

    def test_unbound_templates_have_no_placeholders(self):
        assert not basic_template("C1").is_parameterized()

    def test_instantiation_replaces_all_placeholders(self, small_dataset):
        text = instantiate_template(basic_template("S1"), small_dataset)
        assert "%" not in text
        assert "PREFIX wsdbm:" in text

    def test_instantiation_without_prefixes(self, small_dataset):
        text = instantiate_template(basic_template("L4"), small_dataset, include_prefixes=False)
        assert "PREFIX" not in text

    def test_instantiate_many_deterministic(self, small_dataset):
        first = instantiate_many(basic_template("S1"), small_dataset, 3, seed=5)
        second = instantiate_many(basic_template("S1"), small_dataset, 3, seed=5)
        assert first == second
        assert len(set(first)) >= 1

    def test_missing_mapping_raises(self, small_dataset):
        broken = QueryTemplate(name="X", category="L", text="SELECT * WHERE { %v9% <p> ?x }")
        with pytest.raises(KeyError):
            instantiate_template(broken, small_dataset)

    def test_incremental_chain_grows_by_one_pattern(self):
        shorter = next(t for t in INCREMENTAL_TEMPLATES if t.name == "IL-1-5")
        longer = next(t for t in INCREMENTAL_TEMPLATES if t.name == "IL-1-6")
        assert longer.text.count(" .") == shorter.text.count(" .") + 1
