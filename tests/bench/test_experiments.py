"""Integration tests for the experiment harness: every paper table/figure can
be regenerated at a tiny scale and shows the expected qualitative shape."""

import pytest

from repro.bench import (
    run_join_order_ablation,
    run_oo_correlation_ablation,
    run_sql_backend,
    run_table2_load,
    run_table3_selectivity,
    run_table4_basic,
    run_table5_incremental,
    run_table6_threshold,
)
from repro.bench.reporting import ExperimentReport, arithmetic_mean, format_runtime, geometric_mean
from repro.bench.scaling import paper_work_scale
from repro.watdiv.generator import generate_dataset


@pytest.fixture(scope="module")
def dataset():
    return generate_dataset(scale_factor=1.0, seed=11)


class TestReporting:
    def test_arithmetic_mean_ignores_failures(self):
        assert arithmetic_mean([1.0, 3.0, float("inf")]) == 2.0
        assert arithmetic_mean([float("inf")]) == float("inf")

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 100.0]) == pytest.approx(10.0)

    def test_format_runtime(self):
        assert format_runtime(float("inf")) == "F"
        assert format_runtime(1234.6) == "1235"
        assert format_runtime(12.34) == "12.3"

    def test_report_rendering_and_lookup(self):
        report = ExperimentReport("name", "desc", ["a", "b"])
        report.add_row(a=1, b="x")
        report.add_note("hello")
        text = report.to_text()
        assert "name" in text and "hello" in text
        assert report.row_for(a=1)["b"] == "x"
        assert report.row_for(a=2) is None

    def test_paper_work_scale(self, dataset):
        scale = paper_work_scale(dataset.graph)
        assert scale > 1000


class TestTable2:
    def test_rows_and_extvp_overhead(self, dataset):
        report = run_table2_load(scale_factors=(1.0,), seed=11)
        systems = report.column("system")
        assert "S2RDF ExtVP" in systems and "S2RDF VP" in systems and "SHARD" in systems
        extvp = report.row_for(system="S2RDF ExtVP")
        vp = report.row_for(system="S2RDF VP")
        assert extvp["tuples"] > vp["tuples"]
        assert extvp["simulated_load_s"] > vp["simulated_load_s"]
        assert extvp["tables"] > vp["tables"]


class TestTable3:
    @pytest.fixture(scope="class")
    def report(self, dataset):
        return run_table3_selectivity(dataset=dataset)

    def test_all_st_queries_present(self, report):
        assert len([r for r in report.rows if r["query"].startswith("ST-")]) == 20

    def test_speedup_grows_as_selectivity_drops(self, report):
        low_sf = report.row_for(query="ST-1-3")["speedup"]
        high_sf = report.row_for(query="ST-1-1")["speedup"]
        assert low_sf > high_sf
        assert low_sf > 3.0

    def test_empty_result_queries_short_circuit(self, report):
        for name in ("ST-8-1", "ST-8-2"):
            row = report.row_for(query=name)
            assert row["results"] == 0
            assert row["extvp_input_tuples"] == 0
            assert row["speedup"] > 5.0

    def test_extvp_never_reads_more_than_vp(self, report):
        for row in report.rows:
            assert row["extvp_input_tuples"] <= row["vp_input_tuples"]


class TestTable4:
    @pytest.fixture(scope="class")
    def report(self, dataset):
        return run_table4_basic(dataset=dataset, instantiations=1)

    def test_per_query_and_aggregate_rows(self, report):
        queries = report.column("query")
        assert "L1" in queries and "C3" in queries
        assert "AM-T" in queries and "AM-S" in queries

    def test_s2rdf_extvp_wins_overall(self, report):
        total = report.row_for(query="AM-T")
        assert total["S2RDF ExtVP"] <= total["S2RDF VP"]
        assert total["S2RDF ExtVP"] < total["Sempala"]
        assert total["S2RDF ExtVP"] < total["PigSPARQL"]
        assert total["S2RDF ExtVP"] < total["SHARD"]

    def test_mapreduce_orders_of_magnitude_slower(self, report):
        total = report.row_for(query="AM-T")
        assert total["SHARD"] > 50 * total["S2RDF ExtVP"]
        assert total["PigSPARQL"] > 10 * total["S2RDF ExtVP"]


class TestTable5:
    @pytest.fixture(scope="class")
    def report(self, dataset):
        return run_table5_incremental(
            dataset=dataset, instantiations=1, query_types=("IL-1", "IL-2"), max_diameter=7
        )

    def test_rows_present(self, report):
        assert report.row_for(query="IL-1-5") is not None
        assert report.row_for(query="AM-IL-1") is not None

    def test_s2rdf_beats_mapreduce_on_linear_paths(self, report):
        for query_type in ("AM-IL-1", "AM-IL-2"):
            row = report.row_for(query=query_type)
            assert row["S2RDF ExtVP"] < row["PigSPARQL"]
            assert row["S2RDF ExtVP"] < row["SHARD"]

    def test_mapreduce_grows_with_diameter(self, report):
        short = report.row_for(query="IL-1-5")["SHARD"]
        long = report.row_for(query="IL-1-7")["SHARD"]
        assert long > short


class TestTable6:
    @pytest.fixture(scope="class")
    def report(self, dataset):
        return run_table6_threshold(dataset=dataset, thresholds=(0.0, 0.25, 1.0))

    def test_storage_grows_with_threshold(self, report):
        tuples = report.column("tuples")
        assert tuples == sorted(tuples)

    def test_threshold_025_captures_most_benefit(self, report):
        vp = report.row_for(threshold=0.0)
        mid = report.row_for(threshold=0.25)
        full = report.row_for(threshold=1.0)
        assert full["runtime_ms"] <= vp["runtime_ms"]
        total_gain = vp["runtime_ms"] - full["runtime_ms"]
        captured = vp["runtime_ms"] - mid["runtime_ms"]
        if total_gain > 0:
            assert captured / total_gain > 0.5
        assert mid["tuples"] < full["tuples"]


class TestAblations:
    def test_join_order_never_worse(self, dataset):
        report = run_join_order_ablation(dataset=dataset, template_names=("C2", "C3", "F3", "IL-1-5"))
        for row in report.rows:
            assert row["optimized_intermediate"] <= row["unoptimized_intermediate"]

    def test_oo_tables_rarely_helpful(self, dataset):
        report = run_oo_correlation_ablation(dataset=dataset)
        oo = report.row_for(kind="OO")
        os_row = report.row_for(kind="OS")
        assert oo is not None and os_row is not None
        # OO correlations reduce less than OS correlations on average.
        assert oo["mean_selectivity"] >= os_row["mean_selectivity"] - 0.05


class TestPersistence:
    @pytest.fixture(scope="class")
    def report(self, dataset, tmp_path_factory):
        from repro.bench import run_persistence

        return run_persistence(
            dataset=dataset,
            path=str(tmp_path_factory.mktemp("persistence") / "dataset"),
            template_names=("L1", "S3", "F3", "C2"),
        )

    def test_steps_present(self, report):
        for step in (
            "rebuild (VP + ExtVP build)",
            "save_dataset",
            "cold open_dataset",
            "result equivalence",
            "zone-map-pruned scan",
            "partition-aligned joins",
        ):
            assert report.row_for(step=step) is not None, step

    def test_cold_open_skips_rebuild(self, report):
        cold = report.row_for(step="cold open_dataset")
        assert "no parse/rebuild" in cold["detail"]
        assert cold["seconds"] > 0

    def test_results_agree(self, report):
        assert "0 mismatches" in report.row_for(step="result equivalence")["detail"]

    def test_at_least_one_segment_pruned(self, report):
        detail = report.row_for(step="zone-map-pruned scan")["detail"]
        assert "segments pruned" in detail
        assert not detail.startswith("no prunable")

    def test_aligned_joins_observed(self, report):
        detail = report.row_for(step="partition-aligned joins")["detail"]
        assert not detail.startswith("0 join inputs")


class TestPartitionScaling:
    @pytest.fixture(scope="class")
    def report(self, dataset):
        from repro.bench import run_partition_scaling

        # instantiations=3 keeps the per-join work large enough that the
        # critical-path comparison below measures parallel scaling rather
        # than sub-0.1ms scheduling noise on a loaded CI machine.
        return run_partition_scaling(
            dataset=dataset,
            partition_counts=(1, 2, 8),
            template_names=("L3", "S3", "F5", "C3"),
            instantiations=3,
        )

    def test_rows_and_baseline(self, report):
        assert report.column("partitions") == [1, 2, 8]
        assert report.row_for(partitions=1)["speedup"] == 1
        assert report.row_for(partitions=1)["shuffled_bytes"] == 0

    def test_partitioned_rows_record_exchange_volume(self, report):
        for partitions in (2, 8):
            row = report.row_for(partitions=partitions)
            assert row["shuffled_bytes"] > 0
            assert row["critical_path_ms"] > 0

    def test_critical_path_shrinks_with_partitions(self, report):
        serial = report.row_for(partitions=1)["critical_path_ms"]
        eight = report.row_for(partitions=8)["critical_path_ms"]
        assert eight < serial


class TestSqlBackend:
    @pytest.fixture(scope="class")
    def report(self, dataset):
        return run_sql_backend(dataset=dataset, repeats=1)

    def test_every_basic_query_present(self, report):
        assert len(report) == 20
        assert report.row_for(query="L1") is not None

    def test_equality_asserted_and_totals_stashed(self, report):
        assert report.stash["mismatches"] == 0
        assert report.stash["queries"] == 20
        assert report.stash["total_native_ms"] > 0
        assert report.stash["total_sqlite_ms"] > 0

    def test_machine_readable_shape(self, report):
        payload = report.as_dict()
        assert "native_ms" in payload["timings"] and "sqlite_ms" in payload["timings"]
        assert "rows" in payload["counters"]
        # The noisy speedup ratio must stay out of the gated counters.
        assert "speedup" not in payload["counters"]
