"""Bench regression gate tests: per-kind tolerances, every verdict, the
directory comparison and the CLI exit codes CI relies on."""

import json

import pytest

from repro.bench.regression import (
    DEFAULT_COUNTER_TOLERANCE,
    MIN_COMPARABLE_TIMING,
    MISSING_FILE,
    MISSING_METRIC,
    PASS,
    REGRESS,
    SCHEMA_DRIFT,
    compare_directories,
    compare_reports,
    main,
)
from repro.bench.reporting import BENCH_SCHEMA


def bench(counters=None, timings=None, schema=BENCH_SCHEMA):
    return {
        "schema": schema,
        "name": "synthetic",
        "counters": dict(counters or {}),
        "timings": dict(timings or {}),
    }


BASELINE = bench(
    counters={"input_tuples": 1000, "joins": 12},
    timings={"wall_ms": 80.0, "tiny_ms": 0.4},
)


# --------------------------------------------------------------------------- #
# compare_reports verdicts
# --------------------------------------------------------------------------- #
def test_identical_reports_pass():
    result = compare_reports("b.json", BASELINE, bench(**{
        "counters": BASELINE["counters"], "timings": BASELINE["timings"]}))
    assert result.verdict == PASS
    assert result.failed_checks == []


def test_counters_tolerate_small_symmetric_drift():
    within = 1 + DEFAULT_COUNTER_TOLERANCE - 0.01
    current = bench(
        counters={"input_tuples": 1000 * within, "joins": 12 / within},
        timings=BASELINE["timings"],
    )
    assert compare_reports("b.json", BASELINE, current).verdict == PASS


@pytest.mark.parametrize("direction", [2.0, 0.5])
def test_counter_drift_beyond_tolerance_regresses_both_ways(direction):
    current = bench(
        counters={"input_tuples": 1000 * direction, "joins": 12},
        timings=BASELINE["timings"],
    )
    result = compare_reports("b.json", BASELINE, current)
    assert result.verdict == REGRESS
    (failed,) = result.failed_checks
    assert failed.metric == "input_tuples"
    assert failed.kind == "counter"
    assert "deviation" in failed.detail


def test_timings_only_fail_on_large_growth():
    slower = bench(counters=BASELINE["counters"], timings={"wall_ms": 80.0 * 19, "tiny_ms": 0.4})
    assert compare_reports("b.json", BASELINE, slower).verdict == PASS
    # A faster run is never a regression.
    faster = bench(counters=BASELINE["counters"], timings={"wall_ms": 1.0, "tiny_ms": 0.4})
    assert compare_reports("b.json", BASELINE, faster).verdict == PASS
    blowup = bench(counters=BASELINE["counters"], timings={"wall_ms": 80.0 * 25, "tiny_ms": 0.4})
    result = compare_reports("b.json", BASELINE, blowup)
    assert result.verdict == REGRESS
    assert "grew" in result.failed_checks[0].detail


def test_sub_floor_timings_are_never_compared():
    assert MIN_COMPARABLE_TIMING == 1.0
    current = bench(
        counters=BASELINE["counters"],
        timings={"wall_ms": 80.0, "tiny_ms": 0.4 * 10_000},  # below the 1.0 floor
    )
    assert compare_reports("b.json", BASELINE, current).verdict == PASS


def test_missing_metric_is_its_own_verdict():
    current = bench(counters={"input_tuples": 1000}, timings=BASELINE["timings"])
    result = compare_reports("b.json", BASELINE, current)
    assert result.verdict == MISSING_METRIC
    (failed,) = result.failed_checks
    assert (failed.metric, failed.current) == ("joins", None)


def test_regress_outranks_missing_metric():
    current = bench(counters={"input_tuples": 5000}, timings=BASELINE["timings"])
    assert compare_reports("b.json", BASELINE, current).verdict == REGRESS


def test_new_metrics_in_the_current_run_are_welcome():
    current = bench(
        counters={**BASELINE["counters"], "new_counter": 7},
        timings={**BASELINE["timings"], "new_ms": 1.0},
    )
    assert compare_reports("b.json", BASELINE, current).verdict == PASS


def test_schema_drift_fails_before_any_metric_check():
    drifted = bench(counters=BASELINE["counters"], timings=BASELINE["timings"],
                    schema="s2rdf-bench/v2")
    result = compare_reports("b.json", BASELINE, drifted)
    assert result.verdict == SCHEMA_DRIFT
    assert "s2rdf-bench/v2" in result.detail


# --------------------------------------------------------------------------- #
# Directory comparison and CLI
# --------------------------------------------------------------------------- #
def write_bench(path, data):
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(data), encoding="utf-8")


def test_compare_directories_covers_all_baselines(tmp_path):
    base, cur = tmp_path / "base", tmp_path / "cur"
    write_bench(base / "BENCH_a.json", BASELINE)
    write_bench(base / "BENCH_b.json", BASELINE)
    write_bench(base / "BENCH_c.json", BASELINE)
    write_bench(cur / "BENCH_a.json", BASELINE)  # pass
    write_bench(  # regress
        cur / "BENCH_b.json",
        bench(counters={"input_tuples": 9999, "joins": 12}, timings=BASELINE["timings"]),
    )
    # BENCH_c has no fresh counterpart; extra current files are ignored.
    write_bench(cur / "BENCH_extra.json", BASELINE)
    report = compare_directories(base, cur)
    verdicts = {r.name: r.verdict for r in report.results}
    assert verdicts == {
        "BENCH_a.json": PASS,
        "BENCH_b.json": REGRESS,
        "BENCH_c.json": MISSING_FILE,
    }
    assert not report.ok
    text = report.render_text()
    assert "3 baseline file(s) checked, 2 failing" in text


def test_empty_baseline_directory_is_a_missing_file_failure(tmp_path):
    (tmp_path / "base").mkdir()
    (tmp_path / "cur").mkdir()
    report = compare_directories(tmp_path / "base", tmp_path / "cur")
    assert not report.ok
    assert report.results[0].verdict == MISSING_FILE


def test_unreadable_current_file_is_schema_drift(tmp_path):
    base, cur = tmp_path / "base", tmp_path / "cur"
    write_bench(base / "BENCH_a.json", BASELINE)
    cur.mkdir()
    (cur / "BENCH_a.json").write_text("not json", encoding="utf-8")
    report = compare_directories(base, cur)
    assert report.results[0].verdict == SCHEMA_DRIFT


def test_cli_exit_codes_and_json_output(tmp_path, capsys):
    base, cur = tmp_path / "base", tmp_path / "cur"
    write_bench(base / "BENCH_a.json", BASELINE)
    write_bench(cur / "BENCH_a.json", BASELINE)
    argv = ["--baseline-dir", str(base), "--current-dir", str(cur)]
    assert main(argv) == 0
    assert "1 baseline file(s) checked, 0 failing" in capsys.readouterr().out

    # Synthetically degrade the fresh run: the gate must fail the build.
    write_bench(
        cur / "BENCH_a.json",
        bench(counters={"input_tuples": 1, "joins": 12}, timings=BASELINE["timings"]),
    )
    assert main(argv) == 1
    capsys.readouterr()  # drop the text report; capture the JSON mode cleanly
    assert main(argv + ["--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is False
    assert payload["results"][0]["verdict"] == REGRESS
    assert payload["results"][0]["failed_checks"][0]["metric"] == "input_tuples"


def test_cli_tolerance_flags_are_honoured(tmp_path):
    base, cur = tmp_path / "base", tmp_path / "cur"
    write_bench(base / "BENCH_a.json", BASELINE)
    write_bench(
        cur / "BENCH_a.json",
        bench(counters={"input_tuples": 1400, "joins": 12}, timings=BASELINE["timings"]),
    )
    argv = ["--baseline-dir", str(base), "--current-dir", str(cur)]
    assert main(argv) == 1  # 40% drift > default 25%
    assert main(argv + ["--counter-tolerance", "0.5"]) == 0
