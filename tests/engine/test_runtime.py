"""Unit tests for the partitioned parallel execution runtime."""

import pytest

from repro.engine.catalog import Catalog
from repro.engine.metrics import ExecutionMetrics
from repro.engine.plan import (
    LeftOuterJoinNode,
    NaturalJoinNode,
    PlanExecutor,
    SubqueryNode,
    TableScanNode,
)
from repro.engine.relation import Relation
from repro.engine.runtime import (
    BroadcastHashJoin,
    HashPartitioner,
    ParallelExecutor,
    PartitionedRelation,
    ShuffleHashJoin,
    estimate_rows,
    estimated_bytes,
    key_partition_index,
    plan_join_strategies,
    stable_hash,
)
from repro.rdf.terms import IRI


def bag(relation: Relation):
    return sorted(map(repr, relation.rows))


@pytest.fixture()
def catalog():
    cat = Catalog()
    cat.register("follows", Relation(("s", "o"), [(IRI(f"u{i}"), IRI(f"u{(i * 7) % 40}")) for i in range(160)]))
    cat.register("likes", Relation(("s", "o"), [(IRI(f"u{i}"), IRI(f"p{i % 5}")) for i in range(0, 160, 3)]))
    return cat


@pytest.fixture()
def join_plan():
    return NaturalJoinNode(
        SubqueryNode("follows", (("s", "x"), ("o", "y"))),
        SubqueryNode("likes", (("s", "y"), ("o", "z"))),
    )


class TestHashPartitioner:
    def test_stable_hash_is_deterministic(self):
        assert stable_hash(IRI("abc")) == stable_hash(IRI("abc"))
        assert stable_hash("abc") == stable_hash("abc")
        assert stable_hash(None) == stable_hash(None)

    def test_rows_preserved_and_colocated(self):
        relation = Relation(("s", "o"), [(IRI(f"k{i % 11}"), i) for i in range(100)])
        parts = HashPartitioner(4).partition(relation, ["s"])
        assert sum(len(p) for p in parts) == 100
        # Every key value lands in exactly one partition.
        for key in {row[0] for row in relation.rows}:
            holders = [i for i, p in enumerate(parts) if key in p.column_values("s")]
            assert len(holders) == 1
            assert holders[0] == key_partition_index((key,), 4)

    def test_balance_over_many_distinct_keys(self):
        relation = Relation(("s",), [(IRI(f"entity{i}"),) for i in range(2000)])
        parts = HashPartitioner(8).partition(relation, ["s"])
        sizes = [len(p) for p in parts]
        mean = sum(sizes) / len(sizes)
        assert all(size > 0 for size in sizes)
        # CRC32 spreads distinct keys near-uniformly: within 25% of the mean.
        assert all(abs(size - mean) / mean < 0.25 for size in sizes)

    def test_single_partition_is_identity(self):
        relation = Relation(("s", "o"), [(1, 2), (3, 4)])
        assert HashPartitioner(1).partition(relation, ["s"]) == [relation]

    def test_split_evenly_sizes(self):
        relation = Relation(("s",), [(i,) for i in range(10)])
        chunks = HashPartitioner(4).split_evenly(relation)
        assert [len(c) for c in chunks] == [3, 3, 2, 2]
        assert sum((c.rows for c in chunks), []) == relation.rows

    def test_requires_keys_and_positive_count(self):
        with pytest.raises(ValueError):
            HashPartitioner(0)
        with pytest.raises(ValueError):
            HashPartitioner(2).partition(Relation(("s",), [(1,)]), [])


class TestPartitionedRelation:
    def test_from_relation_merge_roundtrip(self):
        relation = Relation(("s", "o"), [(IRI(f"k{i % 7}"), i) for i in range(50)])
        partitioned = PartitionedRelation.from_relation(relation, 4, keys=["s"])
        assert partitioned.num_partitions == 4
        assert partitioned.total_rows() == 50
        assert partitioned.keys == ("s",)
        assert bag(partitioned.merge()) == bag(relation)

    def test_even_split_has_no_keys(self):
        relation = Relation(("s",), [(i,) for i in range(9)])
        partitioned = PartitionedRelation.from_relation(relation, 3)
        assert partitioned.keys is None
        assert partitioned.partition_sizes() == [3, 3, 3]

    def test_co_partitioning(self):
        left = PartitionedRelation.from_relation(Relation(("a",), [(1,)]), 4, keys=["a"])
        right = PartitionedRelation.from_relation(Relation(("a", "b"), [(1, 2)]), 4, keys=["a"])
        uneven = PartitionedRelation.from_relation(Relation(("a",), [(1,)]), 2, keys=["a"])
        split = PartitionedRelation.from_relation(Relation(("a",), [(1,)]), 4)
        other_keys = PartitionedRelation.from_relation(Relation(("a", "b"), [(1, 2)]), 4, keys=["b"])
        assert left.is_co_partitioned_with(right)
        assert not left.is_co_partitioned_with(uneven)
        assert not left.is_co_partitioned_with(split)
        assert not left.is_co_partitioned_with(other_keys)

    def test_estimated_bytes_scales_with_rows(self):
        small = Relation(("s", "o"), [(1, 2)])
        large = Relation(("s", "o"), [(i, i) for i in range(100)])
        assert estimated_bytes(large) == 100 * estimated_bytes(small)


class TestPhysicalPlanning:
    def test_estimate_rows_from_statistics(self, catalog, join_plan):
        assert estimate_rows(TableScanNode("follows", ("s", "o")), catalog) == 160
        # The join estimate is the larger input (conservative FK heuristic).
        assert estimate_rows(join_plan, catalog) == 160

    def test_broadcast_below_threshold(self, catalog, join_plan):
        physical = plan_join_strategies(join_plan, catalog, broadcast_threshold=10**9)
        (strategy,) = physical.strategies()
        assert isinstance(strategy, BroadcastHashJoin)
        assert strategy.build_side == "right"  # likes is the smaller side
        assert strategy.keys == ("y",)

    def test_shuffle_above_threshold(self, catalog, join_plan):
        physical = plan_join_strategies(join_plan, catalog, broadcast_threshold=0)
        (strategy,) = physical.strategies()
        assert isinstance(strategy, ShuffleHashJoin)
        assert strategy.keys == ("y",)

    def test_threshold_cutover_is_exact(self, catalog, join_plan):
        # The build side (likes ~54 rows x 2 columns x 24 B) broadcasts at
        # exactly its estimated size and shuffles one byte below it.
        build_bytes = estimate_rows(SubqueryNode("likes", (("s", "y"), ("o", "z"))), catalog) * 2 * 24
        at = plan_join_strategies(join_plan, catalog, broadcast_threshold=build_bytes)
        below = plan_join_strategies(join_plan, catalog, broadcast_threshold=build_bytes - 1)
        assert isinstance(at.strategies()[0], BroadcastHashJoin)
        assert isinstance(below.strategies()[0], ShuffleHashJoin)

    def test_left_outer_join_only_broadcasts_right(self, catalog):
        # Left side (likes) is smaller, but the preserved side must not be
        # broadcast: the planner picks the right side or falls back to shuffle.
        plan = LeftOuterJoinNode(
            SubqueryNode("likes", (("s", "x"), ("o", "y"))),
            SubqueryNode("follows", (("s", "x"), ("o", "z"))),
        )
        broadcast = plan_join_strategies(plan, catalog, broadcast_threshold=10**9).strategies()[0]
        assert isinstance(broadcast, BroadcastHashJoin) and broadcast.build_side == "right"
        shuffle = plan_join_strategies(plan, catalog, broadcast_threshold=0).strategies()[0]
        assert isinstance(shuffle, ShuffleHashJoin)

    def test_cross_join_degenerates_to_broadcast(self, catalog):
        plan = NaturalJoinNode(
            SubqueryNode("follows", (("s", "a"), ("o", "b"))),
            SubqueryNode("likes", (("s", "c"), ("o", "d"))),
        )
        (strategy,) = plan_join_strategies(plan, catalog, broadcast_threshold=0).strategies()
        assert isinstance(strategy, BroadcastHashJoin)
        assert strategy.keys == ()

    def test_describe_and_counts(self, catalog, join_plan):
        physical = plan_join_strategies(join_plan, catalog, broadcast_threshold=0)
        assert physical.counts()["ShuffleHashJoin"] == 1
        assert "ShuffleHashJoin" in physical.describe()[0]


class TestParallelExecutor:
    @pytest.mark.parametrize("num_partitions", [1, 2, 8])
    @pytest.mark.parametrize("broadcast_threshold", [0, 10**9])
    def test_bag_equivalent_to_serial(self, catalog, join_plan, num_partitions, broadcast_threshold):
        serial = PlanExecutor(catalog).execute(join_plan, ExecutionMetrics())
        with ParallelExecutor(
            catalog, num_partitions=num_partitions, broadcast_threshold=broadcast_threshold
        ) as executor:
            parallel = executor.execute(join_plan, ExecutionMetrics())
        assert parallel.columns == serial.columns
        assert bag(parallel) == bag(serial)

    @pytest.mark.parametrize("broadcast_threshold", [0, 10**9])
    def test_left_outer_join_equivalent(self, catalog, broadcast_threshold):
        plan = LeftOuterJoinNode(
            SubqueryNode("follows", (("s", "x"), ("o", "y"))),
            SubqueryNode("likes", (("s", "y"), ("o", "z"))),
        )
        serial = PlanExecutor(catalog).execute(plan, ExecutionMetrics())
        with ParallelExecutor(catalog, num_partitions=4, broadcast_threshold=broadcast_threshold) as executor:
            parallel = executor.execute(plan, ExecutionMetrics())
        assert parallel.columns == serial.columns
        assert bag(parallel) == bag(serial)

    def test_shuffle_records_observed_bytes_and_tasks(self, catalog, join_plan):
        metrics = ExecutionMetrics()
        with ParallelExecutor(catalog, num_partitions=4, broadcast_threshold=0) as executor:
            executor.execute(join_plan, metrics)
        assert metrics.shuffle_joins == 1
        assert metrics.broadcast_joins == 0
        assert metrics.shuffled_bytes > 0
        assert metrics.parallel_tasks == 4
        assert metrics.critical_path_ms > 0

    def test_broadcast_records_build_side_volume(self, catalog, join_plan):
        metrics = ExecutionMetrics()
        with ParallelExecutor(catalog, num_partitions=4, broadcast_threshold=10**9) as executor:
            executor.execute(join_plan, metrics)
        assert metrics.broadcast_joins == 1
        assert metrics.shuffled_bytes == 0
        # The build side (likes, 54 rows x 2 columns) is shipped to all 4 partitions.
        assert metrics.broadcast_bytes == 54 * 2 * 24 * 4

    def test_join_counters_match_serial(self, catalog, join_plan):
        serial_metrics = ExecutionMetrics()
        PlanExecutor(catalog).execute(join_plan, serial_metrics)
        parallel_metrics = ExecutionMetrics()
        with ParallelExecutor(catalog, num_partitions=8, broadcast_threshold=0) as executor:
            executor.execute(join_plan, parallel_metrics)
        assert parallel_metrics.joins == serial_metrics.joins
        assert parallel_metrics.stages == serial_metrics.stages
        assert parallel_metrics.shuffled_tuples == serial_metrics.shuffled_tuples
        assert parallel_metrics.output_tuples == serial_metrics.output_tuples

    def test_single_partition_stays_serial(self, catalog, join_plan):
        metrics = ExecutionMetrics()
        with ParallelExecutor(catalog, num_partitions=1) as executor:
            executor.execute(join_plan, metrics)
        assert metrics.parallel_tasks == 0
        assert metrics.shuffled_bytes == 0
        assert metrics.broadcast_bytes == 0
        assert executor.last_physical_plan is not None

    def test_empty_side_falls_back_to_serial(self, catalog, join_plan):
        catalog.register("likes", Relation.empty(("s", "o")))
        metrics = ExecutionMetrics()
        with ParallelExecutor(catalog, num_partitions=4) as executor:
            result = executor.execute(join_plan, metrics)
        assert len(result) == 0
        assert metrics.parallel_tasks == 0

    def test_rejects_non_positive_partitions(self, catalog):
        with pytest.raises(ValueError):
            ParallelExecutor(catalog, num_partitions=0)
