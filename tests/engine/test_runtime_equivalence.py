"""Property-style equivalence: the parallel runtime must return the same bag
of rows as the serial executor for every WatDiv Basic and Incremental Linear
query, at every partition count and under both join strategies.

The second half is the *differential correctness harness*: a seeded
randomized generator of BGP / OPTIONAL / UNION queries asserting bag-equality
across four execution paths — serial reference, parallel (static plans),
parallel adaptive, and stored-scan over a persisted dataset that carries
pending (uncompacted) delta segments from an incremental append."""

import random

import pytest

from repro.core.session import S2RDFSession, SessionConfig
from repro.engine.metrics import ExecutionMetrics
from repro.engine.plan import PlanExecutor
from repro.engine.runtime import ParallelExecutor
from repro.mappings.extvp import ExtVPLayout
from repro.obs.trace import Tracer
from repro.rdf.graph import Graph
from repro.watdiv.basic_queries import BASIC_TEMPLATES
from repro.watdiv.incremental_queries import INCREMENTAL_TEMPLATES
from repro.watdiv.template import instantiate_template

ALL_TEMPLATES = {template.name: template for template in BASIC_TEMPLATES + INCREMENTAL_TEMPLATES}


@pytest.fixture(scope="module")
def workload(small_dataset):
    """One shared layout plus every workload query compiled once."""
    layout = ExtVPLayout(selectivity_threshold=1.0)
    layout.build(small_dataset.graph)
    session = S2RDFSession(layout, config=SessionConfig())
    compiled = {
        name: session.compile(instantiate_template(template, small_dataset))
        for name, template in ALL_TEMPLATES.items()
    }
    return layout, compiled


def bag(relation):
    return sorted(map(repr, relation.rows))


@pytest.mark.parametrize("template_name", sorted(ALL_TEMPLATES))
def test_parallel_matches_serial_on_watdiv(workload, template_name):
    layout, compiled = workload
    plan = compiled[template_name].plan
    serial = PlanExecutor(layout.catalog).execute(plan, ExecutionMetrics())
    # broadcast_threshold=0 forces ShuffleHashJoin, a huge threshold forces
    # BroadcastHashJoin — both physical strategies must agree with the serial
    # reference at every partition count.
    for num_partitions in (1, 2, 8):
        for broadcast_threshold in (0, 10**12):
            with ParallelExecutor(
                layout.catalog,
                num_partitions=num_partitions,
                broadcast_threshold=broadcast_threshold,
            ) as executor:
                parallel = executor.execute(plan, ExecutionMetrics())
            context = f"partitions={num_partitions}, threshold={broadcast_threshold}"
            assert parallel.columns == serial.columns, context
            assert bag(parallel) == bag(serial), context


# --------------------------------------------------------------------------- #
# Differential correctness harness: randomized BGP / OPTIONAL / UNION queries
# --------------------------------------------------------------------------- #
class RandomQueryGenerator:
    """Seeded generator of structurally varied SPARQL queries.

    BGPs are grown connected (each new triple pattern shares at least one
    variable with the ones before it); subjects/objects are variables most of
    the time but occasionally constants drawn from the dataset's terms, so
    pushdown scans with equality predicates get exercised too.  On top of the
    plain BGP shape the generator emits OPTIONAL blocks (left outer joins)
    and two-branch UNIONs.
    """

    def __init__(self, graph: Graph, seed: int) -> None:
        self.rng = random.Random(seed)
        self.predicates = [p.n3() for p in graph.predicates()]
        subjects = sorted(graph.subjects(), key=lambda t: t.n3())
        objects = sorted(graph.objects(), key=lambda t: t.n3())
        self.subject_terms = [t.n3() for t in subjects]
        self.object_terms = [t.n3() for t in objects]

    def _bgp(self, size: int, first_var: int = 0):
        """Return (pattern lines, next free variable index)."""
        patterns = []
        next_var = first_var + 2
        variables = [f"?v{first_var}", f"?v{first_var + 1}"]
        patterns.append(
            f"{variables[0]} {self.rng.choice(self.predicates)} {variables[1]} ."
        )
        for _ in range(size - 1):
            anchor = self.rng.choice(variables)
            fresh = f"?v{next_var}"
            next_var += 1
            roll = self.rng.random()
            if roll < 0.45:
                subject, object_ = anchor, fresh
                variables.append(fresh)
            elif roll < 0.8:
                subject, object_ = fresh, anchor
                variables.append(fresh)
            elif roll < 0.9:
                subject, object_ = anchor, self.rng.choice(self.object_terms)
            else:
                subject, object_ = self.rng.choice(self.subject_terms), anchor
            patterns.append(f"{subject} {self.rng.choice(self.predicates)} {object_} .")
        return patterns, next_var

    def query(self) -> str:
        shape = self.rng.choice(["bgp", "bgp", "optional", "union"])
        if shape == "bgp":
            patterns, _ = self._bgp(self.rng.randint(2, 4))
            body = "\n  ".join(patterns)
        elif shape == "optional":
            required, next_var = self._bgp(self.rng.randint(1, 3))
            # The OPTIONAL block hooks onto ?v1, shared with the required part.
            optional = (
                f"?v1 {self.rng.choice(self.predicates)} ?v{next_var} ."
            )
            body = "\n  ".join(required) + "\n  OPTIONAL { " + optional + " }"
        else:
            left, _ = self._bgp(self.rng.randint(1, 2))
            right, _ = self._bgp(self.rng.randint(1, 2))
            body = "{ " + " ".join(left) + " } UNION { " + " ".join(right) + " }"
        return "SELECT * WHERE {\n  " + body + "\n}"


@pytest.fixture(scope="module")
def differential_setup(small_dataset, tmp_path_factory):
    """One warm layout on the full graph plus a stored session whose dataset
    was saved from a *subset* and grown to the full graph via append_triples —
    so its tables carry pending, uncompacted delta segments."""
    graph = small_dataset.graph
    triples = sorted(graph, key=lambda t: (t.subject.n3(), t.predicate.n3(), t.object.n3()))
    base = [t for i, t in enumerate(triples) if i % 7 != 0]
    pending = [t for i, t in enumerate(triples) if i % 7 == 0]

    warm = S2RDFSession(ExtVPLayout(selectivity_threshold=1.0), config=SessionConfig())
    warm.layout.build(graph)

    saver = S2RDFSession.from_graph(Graph(base), num_partitions=4)
    path = str(tmp_path_factory.mktemp("differential") / "dataset")
    saver.save_dataset(path)
    saver.close()
    # tracing_enabled exercises the instrumented store/query paths on the
    # stored-scan mode; tracing must never change answers.
    stored = S2RDFSession.open_dataset(path, tracing_enabled=True)
    report = stored.append_triples(pending)
    assert report.triples_appended == len(pending)
    assert report.delta_segments > 0  # the deltas really are pending

    yield warm, stored
    warm.close()
    stored.close()


@pytest.mark.parametrize("seed", range(8))
def test_differential_equivalence_across_execution_modes(differential_setup, seed):
    """Serial, parallel-static, parallel-adaptive and stored-scan execution
    must agree on the bag of rows for every generated query."""
    warm, stored = differential_setup
    generator = RandomQueryGenerator(_graph_view(warm), seed)
    catalog = warm.layout.catalog
    for _ in range(6):
        query_text = generator.query()
        compiled = warm.compile(query_text)
        reference = PlanExecutor(catalog).execute(compiled.plan, ExecutionMetrics())
        for label, executor_kwargs in (
            ("parallel-static", {"num_partitions": 4, "adaptive_enabled": False}),
            ("parallel-static-shuffle", {"num_partitions": 4, "adaptive_enabled": False, "broadcast_threshold": 0}),
            ("parallel-adaptive", {"num_partitions": 4, "adaptive_enabled": True}),
        ):
            # Each mode runs with tracing off and on: the span instrumentation
            # wraps every operator and task, and must never change the bag.
            for traced in (False, True):
                kwargs = dict(executor_kwargs)
                if traced:
                    kwargs["tracer"] = Tracer(enabled=True)
                    label_run = f"{label}-traced"
                else:
                    label_run = label
                with ParallelExecutor(catalog, **kwargs) as executor:
                    result = executor.execute(compiled.plan, ExecutionMetrics())
                assert result.columns == reference.columns, (label_run, query_text)
                assert bag(result) == bag(reference), (label_run, query_text)
        stored_result = stored.query(query_text)
        assert sorted(stored_result.relation.columns) == sorted(reference.columns), query_text
        projected = stored_result.relation.project(reference.columns)
        assert bag(projected) == bag(reference), ("stored-scan", query_text)


def _graph_view(session: S2RDFSession) -> Graph:
    """Reconstruct a Graph from the session's triples table (generator input)."""
    from repro.rdf.triple import Triple

    relation = session.layout.catalog.table("triples")
    return Graph(Triple(s, p, o) for s, p, o in relation.rows)
