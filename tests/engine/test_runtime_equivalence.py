"""Property-style equivalence: the parallel runtime must return the same bag
of rows as the serial executor for every WatDiv Basic and Incremental Linear
query, at every partition count and under both join strategies."""

import pytest

from repro.core.session import S2RDFSession, SessionConfig
from repro.engine.metrics import ExecutionMetrics
from repro.engine.plan import PlanExecutor
from repro.engine.runtime import ParallelExecutor
from repro.mappings.extvp import ExtVPLayout
from repro.watdiv.basic_queries import BASIC_TEMPLATES
from repro.watdiv.incremental_queries import INCREMENTAL_TEMPLATES
from repro.watdiv.template import instantiate_template

ALL_TEMPLATES = {template.name: template for template in BASIC_TEMPLATES + INCREMENTAL_TEMPLATES}


@pytest.fixture(scope="module")
def workload(small_dataset):
    """One shared layout plus every workload query compiled once."""
    layout = ExtVPLayout(selectivity_threshold=1.0)
    layout.build(small_dataset.graph)
    session = S2RDFSession(layout, config=SessionConfig())
    compiled = {
        name: session.compile(instantiate_template(template, small_dataset))
        for name, template in ALL_TEMPLATES.items()
    }
    return layout, compiled


def bag(relation):
    return sorted(map(repr, relation.rows))


@pytest.mark.parametrize("template_name", sorted(ALL_TEMPLATES))
def test_parallel_matches_serial_on_watdiv(workload, template_name):
    layout, compiled = workload
    plan = compiled[template_name].plan
    serial = PlanExecutor(layout.catalog).execute(plan, ExecutionMetrics())
    # broadcast_threshold=0 forces ShuffleHashJoin, a huge threshold forces
    # BroadcastHashJoin — both physical strategies must agree with the serial
    # reference at every partition count.
    for num_partitions in (1, 2, 8):
        for broadcast_threshold in (0, 10**12):
            with ParallelExecutor(
                layout.catalog,
                num_partitions=num_partitions,
                broadcast_threshold=broadcast_threshold,
            ) as executor:
                parallel = executor.execute(plan, ExecutionMetrics())
            context = f"partitions={num_partitions}, threshold={broadcast_threshold}"
            assert parallel.columns == serial.columns, context
            assert bag(parallel) == bag(serial), context
