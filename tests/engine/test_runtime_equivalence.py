"""Property-style equivalence: the parallel runtime must return the same bag
of rows as the serial executor for every WatDiv Basic and Incremental Linear
query, at every partition count and under both join strategies.

The second half is the *differential correctness harness*: a seeded
randomized generator of BGP / OPTIONAL / UNION queries — layered with
FILTER expressions, DISTINCT, ORDER BY + LIMIT and aggregate heads
(COUNT / SUM / AVG / MIN / MAX, grouped and implicit) — asserting
bag-equality across seven execution paths: serial reference, parallel
(static plans), parallel adaptive, stored-scan over a persisted dataset
that carries pending (uncompacted) delta segments from an incremental
append, the same stored dataset with the vectorized id-column kernels
enabled, the sqlite SQL-lowering backend (both over the warm catalog
and over the delta-carrying stored dataset), and the stored dataset
executed with ``execution_mode="process"`` — join tasks dispatched to
partition worker processes."""

import random

import pytest

from repro.core.session import S2RDFSession, SessionConfig
from repro.engine.metrics import ExecutionMetrics
from repro.engine.plan import PlanExecutor
from repro.engine.runtime import ParallelExecutor
from repro.engine.sql import SqliteExecutor
from repro.mappings.extvp import ExtVPLayout
from repro.obs.trace import Tracer
from repro.rdf.graph import Graph
from repro.watdiv.basic_queries import BASIC_TEMPLATES
from repro.watdiv.incremental_queries import INCREMENTAL_TEMPLATES
from repro.watdiv.template import instantiate_template

ALL_TEMPLATES = {template.name: template for template in BASIC_TEMPLATES + INCREMENTAL_TEMPLATES}


@pytest.fixture(scope="module")
def workload(small_dataset):
    """One shared layout plus every workload query compiled once."""
    layout = ExtVPLayout(selectivity_threshold=1.0)
    layout.build(small_dataset.graph)
    session = S2RDFSession(layout, config=SessionConfig())
    compiled = {
        name: session.compile(instantiate_template(template, small_dataset))
        for name, template in ALL_TEMPLATES.items()
    }
    return layout, compiled


def bag(relation):
    return sorted(map(repr, relation.rows))


@pytest.mark.parametrize("template_name", sorted(ALL_TEMPLATES))
def test_parallel_matches_serial_on_watdiv(workload, template_name):
    layout, compiled = workload
    plan = compiled[template_name].plan
    serial = PlanExecutor(layout.catalog).execute(plan, ExecutionMetrics())
    # broadcast_threshold=0 forces ShuffleHashJoin, a huge threshold forces
    # BroadcastHashJoin — both physical strategies must agree with the serial
    # reference at every partition count.
    for num_partitions in (1, 2, 8):
        for broadcast_threshold in (0, 10**12):
            with ParallelExecutor(
                layout.catalog,
                num_partitions=num_partitions,
                broadcast_threshold=broadcast_threshold,
            ) as executor:
                parallel = executor.execute(plan, ExecutionMetrics())
            context = f"partitions={num_partitions}, threshold={broadcast_threshold}"
            assert parallel.columns == serial.columns, context
            assert bag(parallel) == bag(serial), context


# --------------------------------------------------------------------------- #
# Differential correctness harness: randomized BGP / OPTIONAL / UNION queries
# --------------------------------------------------------------------------- #
class RandomQueryGenerator:
    """Seeded generator of structurally varied SPARQL queries.

    BGPs are grown connected (each new triple pattern shares at least one
    variable with the ones before it); subjects/objects are variables most of
    the time but occasionally constants drawn from the dataset's terms, so
    pushdown scans with equality predicates get exercised too.  On top of the
    plain BGP shape the generator emits OPTIONAL blocks (left outer joins)
    and two-branch UNIONs, randomly layers FILTER expressions (comparisons
    against dataset constants under &&, || and !) over the body, and picks a
    head shape: SELECT *, DISTINCT, ORDER BY every variable + LIMIT, or an
    aggregate head (COUNT / COUNT DISTINCT / SUM / AVG / MIN / MAX with an
    optional GROUP BY key — the dataset's numeric literals are all integers,
    so SUM/AVG are exact on every backend).  Ordering by *every* in-scope
    variable makes the sort key the whole row, so LIMIT cuts are
    deterministic up to duplicate rows and bag-equality is well-defined.
    """

    _COMPARATORS = ("=", "!=", "<", "<=", ">", ">=")
    _AGG_FUNCTIONS = ("count", "count", "sum", "avg", "min", "max")

    def __init__(self, graph: Graph, seed: int) -> None:
        self.rng = random.Random(seed)
        self.predicates = [p.n3() for p in graph.predicates()]
        subjects = sorted(graph.subjects(), key=lambda t: t.n3())
        objects = sorted(graph.objects(), key=lambda t: t.n3())
        self.subject_terms = [t.n3() for t in subjects]
        self.object_terms = [t.n3() for t in objects]

    def _bgp(self, size: int, first_var: int = 0):
        """Return (pattern lines, in-scope variables, next free var index)."""
        patterns = []
        next_var = first_var + 2
        variables = [f"?v{first_var}", f"?v{first_var + 1}"]
        patterns.append(
            f"{variables[0]} {self.rng.choice(self.predicates)} {variables[1]} ."
        )
        for _ in range(size - 1):
            anchor = self.rng.choice(variables)
            fresh = f"?v{next_var}"
            next_var += 1
            roll = self.rng.random()
            if roll < 0.45:
                subject, object_ = anchor, fresh
                variables.append(fresh)
            elif roll < 0.8:
                subject, object_ = fresh, anchor
                variables.append(fresh)
            elif roll < 0.9:
                subject, object_ = anchor, self.rng.choice(self.object_terms)
            else:
                subject, object_ = self.rng.choice(self.subject_terms), anchor
            patterns.append(f"{subject} {self.rng.choice(self.predicates)} {object_} .")
        return patterns, variables, next_var

    def _body(self):
        """Return (group graph pattern text, in-scope variables)."""
        shape = self.rng.choice(["bgp", "bgp", "optional", "union"])
        if shape == "bgp":
            patterns, variables, _ = self._bgp(self.rng.randint(2, 4))
            body = "\n  ".join(patterns)
        elif shape == "optional":
            required, variables, next_var = self._bgp(self.rng.randint(1, 3))
            # The OPTIONAL block hooks onto ?v1, shared with the required part.
            optional_var = f"?v{next_var}"
            optional = f"?v1 {self.rng.choice(self.predicates)} {optional_var} ."
            body = "\n  ".join(required) + "\n  OPTIONAL { " + optional + " }"
            variables = variables + [optional_var]
        else:
            left, left_vars, _ = self._bgp(self.rng.randint(1, 2))
            right, right_vars, _ = self._bgp(self.rng.randint(1, 2))
            body = "{ " + " ".join(left) + " } UNION { " + " ".join(right) + " }"
            variables = sorted(set(left_vars) | set(right_vars), key=lambda v: int(v[2:]))
        return body, variables

    def _comparison(self, variables) -> str:
        variable = self.rng.choice(variables)
        operator = self.rng.choice(self._COMPARATORS)
        constant = self.rng.choice(self.object_terms)
        return f"{variable} {operator} {constant}"

    def _filter(self, variables) -> str:
        roll = self.rng.random()
        if roll < 0.5:
            expression = self._comparison(variables)
        elif roll < 0.7:
            expression = f"{self._comparison(variables)} && {self._comparison(variables)}"
        elif roll < 0.85:
            expression = f"{self._comparison(variables)} || {self._comparison(variables)}"
        else:
            expression = f"!({self._comparison(variables)})"
        return f"FILTER({expression})"

    def _aggregate_head(self, variables):
        """Return (select clause, trailing GROUP BY clause or '')."""
        group = self.rng.choice(variables) if self.rng.random() < 0.6 else None
        candidates = [v for v in variables if v != group] or list(variables)
        bindings = []
        for index in range(self.rng.randint(1, 2)):
            function = self.rng.choice(self._AGG_FUNCTIONS)
            distinct = "DISTINCT " if self.rng.random() < 0.3 else ""
            if function == "count" and self.rng.random() < 0.3:
                argument = "*"
            else:
                argument = self.rng.choice(candidates)
            bindings.append(f"({function.upper()}({distinct}{argument}) AS ?agg{index})")
        select = ((group + " ") if group else "") + " ".join(bindings)
        return select, (f" GROUP BY {group}" if group else "")

    def query(self) -> str:
        body, variables = self._body()
        if self.rng.random() < 0.4:
            body += "\n  " + self._filter(variables)
        head = self.rng.choice(["star", "star", "distinct", "order-limit", "aggregate"])
        if head == "star":
            return "SELECT * WHERE {\n  " + body + "\n}"
        if head == "distinct":
            return "SELECT DISTINCT * WHERE {\n  " + body + "\n}"
        if head == "order-limit":
            keys = " ".join(
                variable if self.rng.random() < 0.5 else f"DESC({variable})"
                for variable in variables
            )
            limit = self.rng.randint(1, 25)
            return (
                "SELECT * WHERE {\n  " + body + "\n} ORDER BY " + keys + f" LIMIT {limit}"
            )
        select, group_by = self._aggregate_head(variables)
        return "SELECT " + select + " WHERE {\n  " + body + "\n}" + group_by


@pytest.fixture(scope="module")
def differential_setup(small_dataset, tmp_path_factory):
    """One warm layout on the full graph plus a stored session whose dataset
    was saved from a *subset* and grown to the full graph via append_triples —
    so its tables carry pending, uncompacted delta segments."""
    graph = small_dataset.graph
    triples = sorted(graph, key=lambda t: (t.subject.n3(), t.predicate.n3(), t.object.n3()))
    base = [t for i, t in enumerate(triples) if i % 7 != 0]
    pending = [t for i, t in enumerate(triples) if i % 7 == 0]

    warm = S2RDFSession(ExtVPLayout(selectivity_threshold=1.0), config=SessionConfig())
    warm.layout.build(graph)

    saver = S2RDFSession.from_graph(Graph(base), num_partitions=4)
    path = str(tmp_path_factory.mktemp("differential") / "dataset")
    saver.save_dataset(path)
    saver.close()
    # tracing_enabled exercises the instrumented store/query paths on the
    # stored-scan mode; tracing must never change answers.
    stored = S2RDFSession.open_dataset(path, tracing_enabled=True)
    report = stored.append_triples(pending)
    assert report.triples_appended == len(pending)
    assert report.delta_segments > 0  # the deltas really are pending

    # The sqlite backend runs twice: straight over the warm catalog, and as a
    # full session over the delta-carrying stored dataset.  The vectorized
    # session re-opens the same delta-carrying dataset with the id-column
    # batch kernels on — deferred decoding must never change the bag.
    sqlite_executor = SqliteExecutor(warm.layout.catalog)
    stored_sql = S2RDFSession.open_dataset(path, engine="sqlite")
    stored_vec = S2RDFSession.open_dataset(path, tracing_enabled=True, vectorized_enabled=True)
    # Seventh path: process-based partition workers over the same
    # delta-carrying dataset — co-partitioned join tasks execute in separate
    # worker processes and ship packed id batches back over the wire.
    stored_proc = S2RDFSession.open_dataset(
        path, execution_mode="process", worker_processes=2, vectorized_enabled=True
    )

    yield warm, stored, sqlite_executor, stored_sql, stored_vec, stored_proc
    sqlite_executor.close()
    warm.close()
    stored.close()
    stored_sql.close()
    stored_vec.close()
    stored_proc.close()


@pytest.mark.parametrize("seed", range(8))
def test_differential_equivalence_across_execution_modes(differential_setup, seed):
    """Serial, parallel-static, parallel-adaptive, stored-scan, vectorized
    stored-scan, sqlite and process-worker execution must agree on the bag of
    rows for every generated query."""
    warm, stored, sqlite_executor, stored_sql, stored_vec, stored_proc = differential_setup
    generator = RandomQueryGenerator(_graph_view(warm), seed)
    catalog = warm.layout.catalog
    for _ in range(6):
        query_text = generator.query()
        compiled = warm.compile(query_text)
        reference = PlanExecutor(catalog).execute(compiled.plan, ExecutionMetrics())
        for label, executor_kwargs in (
            ("parallel-static", {"num_partitions": 4, "adaptive_enabled": False}),
            ("parallel-static-shuffle", {"num_partitions": 4, "adaptive_enabled": False, "broadcast_threshold": 0}),
            ("parallel-adaptive", {"num_partitions": 4, "adaptive_enabled": True}),
        ):
            # Each mode runs with tracing off and on: the span instrumentation
            # wraps every operator and task, and must never change the bag.
            for traced in (False, True):
                kwargs = dict(executor_kwargs)
                if traced:
                    kwargs["tracer"] = Tracer(enabled=True)
                    label_run = f"{label}-traced"
                else:
                    label_run = label
                with ParallelExecutor(catalog, **kwargs) as executor:
                    result = executor.execute(compiled.plan, ExecutionMetrics())
                assert result.columns == reference.columns, (label_run, query_text)
                assert bag(result) == bag(reference), (label_run, query_text)
        sql_result = sqlite_executor.execute(compiled.plan, ExecutionMetrics())
        assert sql_result.columns == reference.columns, ("sqlite", query_text)
        assert bag(sql_result) == bag(reference), ("sqlite", query_text)
        stored_result = stored.query(query_text)
        assert sorted(stored_result.relation.columns) == sorted(reference.columns), query_text
        projected = stored_result.relation.project(reference.columns)
        assert bag(projected) == bag(reference), ("stored-scan", query_text)
        stored_sql_result = stored_sql.query(query_text)
        assert stored_sql_result.engine == "sqlite"
        assert sorted(stored_sql_result.relation.columns) == sorted(reference.columns), query_text
        projected_sql = stored_sql_result.relation.project(reference.columns)
        assert bag(projected_sql) == bag(reference), ("stored-sqlite", query_text)
        vec_result = stored_vec.query(query_text)
        assert sorted(vec_result.relation.columns) == sorted(reference.columns), query_text
        projected_vec = vec_result.relation.project(reference.columns)
        assert bag(projected_vec) == bag(reference), ("stored-vectorized", query_text)
        proc_result = stored_proc.query(query_text)
        assert sorted(proc_result.relation.columns) == sorted(reference.columns), query_text
        projected_proc = proc_result.relation.project(reference.columns)
        assert bag(projected_proc) == bag(reference), ("stored-process", query_text)


def _graph_view(session: S2RDFSession) -> Graph:
    """Reconstruct a Graph from the session's triples table (generator input)."""
    from repro.rdf.triple import Triple

    relation = session.layout.catalog.table("triples")
    return Graph(Triple(s, p, o) for s, p, o in relation.rows)
