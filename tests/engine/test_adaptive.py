"""Tests for adaptive query execution: estimate fixes, replans, skew splits.

Covers the estimator's unknown-statistics sentinel (missing statistics must
never produce a 0-byte broadcast), run-time strategy revision from observed
sizes (demotion, promotion, build-side flips), skew splitting (bag-equal to
the serial executor, aligned stored buckets exempt), the planned-vs-executed
reconciliation in :class:`PhysicalPlan`, and the observed-cardinality feedback
loop through the catalog.
"""

import pytest

from repro.engine.catalog import Catalog
from repro.engine.metrics import ExecutionMetrics
from repro.engine.plan import (
    LeftOuterJoinNode,
    LimitNode,
    NaturalJoinNode,
    PlanExecutor,
    SubqueryNode,
    TableScanNode,
)
from repro.engine.relation import Partitioning, Relation
from repro.engine.runtime import (
    UNKNOWN_ROWS,
    AdaptivePlanner,
    BroadcastHashJoin,
    HashPartitioner,
    ParallelExecutor,
    SerialJoin,
    ShuffleHashJoin,
    estimate_rows,
    plan_join_strategies,
)
from repro.rdf.terms import IRI


def bag(relation: Relation):
    return sorted(map(repr, relation.rows))


@pytest.fixture()
def catalog():
    cat = Catalog()
    cat.register(
        "follows",
        Relation(("s", "o"), [(IRI(f"u{i}"), IRI(f"u{(i * 7) % 40}")) for i in range(160)]),
    )
    cat.register(
        "likes", Relation(("s", "o"), [(IRI(f"u{i}"), IRI(f"p{i % 5}")) for i in range(0, 160, 3)])
    )
    return cat


@pytest.fixture()
def join_plan():
    return NaturalJoinNode(
        SubqueryNode("follows", (("s", "x"), ("o", "y"))),
        SubqueryNode("likes", (("s", "y"), ("o", "z"))),
    )


def stale_statistics(catalog: Catalog, name: str, row_count: int) -> None:
    """Overwrite a table's statistics with a wrong cardinality (keeps the rows)."""
    catalog.register_statistics_only(name, row_count, 1.0)


class TestUnknownCardinality:
    """Missing statistics must be conservative, never a 0-row broadcast."""

    def test_missing_statistics_estimate_is_unknown(self, catalog):
        catalog.remove_statistics("follows")
        assert estimate_rows(TableScanNode("follows", ("s", "o")), catalog) == UNKNOWN_ROWS

    def test_unknown_propagates_through_joins(self, catalog, join_plan):
        catalog.remove_statistics("follows")
        assert estimate_rows(join_plan, catalog) == UNKNOWN_ROWS

    def test_limit_bounds_unknown(self, catalog, join_plan):
        catalog.remove_statistics("follows")
        assert estimate_rows(LimitNode(join_plan, 7), catalog) == 7

    def test_subquery_conditions_cannot_refine_unknown(self, catalog):
        catalog.remove_statistics("likes")
        node = SubqueryNode("likes", (("o", "z"),), conditions=(("s", IRI("u3")),))
        assert estimate_rows(node, catalog) == UNKNOWN_ROWS

    def test_unknown_side_is_never_broadcast(self, catalog, join_plan):
        # The old planner estimated a stats-less table at 0 rows and broadcast
        # it unconditionally; it must shuffle instead.
        catalog.remove_statistics("follows")
        catalog.remove_statistics("likes")
        (strategy,) = plan_join_strategies(join_plan, catalog, broadcast_threshold=10**9).strategies()
        assert isinstance(strategy, ShuffleHashJoin)

    def test_known_small_side_still_broadcasts(self, catalog, join_plan):
        # Unknown left, tiny known right: the known side is a safe build side.
        catalog.remove_statistics("follows")
        (strategy,) = plan_join_strategies(join_plan, catalog, broadcast_threshold=10**9).strategies()
        assert isinstance(strategy, BroadcastHashJoin)
        assert strategy.build_side == "right"
        assert strategy.left_rows == UNKNOWN_ROWS
        assert "left~? rows" in strategy.describe()

    def test_keyless_join_prefers_known_build_side(self, catalog):
        plan = NaturalJoinNode(
            SubqueryNode("follows", (("s", "a"), ("o", "b"))),
            SubqueryNode("likes", (("s", "c"), ("o", "d"))),
        )
        catalog.remove_statistics("likes")
        (strategy,) = plan_join_strategies(plan, catalog, broadcast_threshold=0).strategies()
        # A cross join must broadcast something; the known side is the only
        # defensible candidate.
        assert isinstance(strategy, BroadcastHashJoin)
        assert strategy.build_side == "left"


class TestAdaptiveReplanning:
    def test_stale_high_statistics_demote_shuffle_to_broadcast(self, catalog, join_plan):
        # Statistics claim both sides are huge -> static plan shuffles; the
        # observed build side is tiny -> AQE demotes to broadcast.
        stale_statistics(catalog, "follows", 10_000_000)
        stale_statistics(catalog, "likes", 10_000_000)
        serial = PlanExecutor(catalog).execute(join_plan, ExecutionMetrics())
        metrics = ExecutionMetrics()
        with ParallelExecutor(catalog, num_partitions=4) as executor:
            result = executor.execute(join_plan, metrics)
            physical = executor.last_physical_plan
        assert isinstance(physical.strategies()[0], ShuffleHashJoin)
        assert isinstance(physical.executed_strategies()[0], BroadcastHashJoin)
        assert metrics.aqe_replans == 1
        assert metrics.broadcast_joins == 1
        assert metrics.shuffle_joins == 0
        assert len(physical.replans()) == 1
        assert bag(result) == bag(serial)

    def test_stale_low_statistics_promote_broadcast_to_shuffle(self, catalog, join_plan):
        # Statistics claim both sides are tiny -> static plan broadcasts; the
        # observed build side exceeds the threshold -> AQE promotes to shuffle.
        stale_statistics(catalog, "follows", 1)
        stale_statistics(catalog, "likes", 1)
        serial = PlanExecutor(catalog).execute(join_plan, ExecutionMetrics())
        metrics = ExecutionMetrics()
        with ParallelExecutor(catalog, num_partitions=4, broadcast_threshold=1000) as executor:
            result = executor.execute(join_plan, metrics)
            physical = executor.last_physical_plan
        assert isinstance(physical.strategies()[0], BroadcastHashJoin)
        assert isinstance(physical.executed_strategies()[0], ShuffleHashJoin)
        assert metrics.aqe_replans == 1
        assert metrics.shuffle_joins == 1
        assert metrics.broadcast_joins == 0
        assert bag(result) == bag(serial)

    def test_deleted_statistics_demote_and_stay_bag_equal(self, catalog, join_plan):
        catalog.remove_statistics("follows")
        catalog.remove_statistics("likes")
        serial = PlanExecutor(catalog).execute(join_plan, ExecutionMetrics())
        metrics = ExecutionMetrics()
        with ParallelExecutor(catalog, num_partitions=4) as executor:
            result = executor.execute(join_plan, metrics)
            physical = executor.last_physical_plan
        # Unknown sizes planned a shuffle; the observed sizes are broadcastable.
        assert isinstance(physical.strategies()[0], ShuffleHashJoin)
        assert isinstance(physical.executed_strategies()[0], BroadcastHashJoin)
        assert metrics.aqe_replans == 1
        assert bag(result) == bag(serial)

    def test_adaptive_disabled_reproduces_static_plan(self, catalog, join_plan):
        stale_statistics(catalog, "follows", 10_000_000)
        stale_statistics(catalog, "likes", 10_000_000)
        static = plan_join_strategies(catalog=catalog, plan=join_plan)
        metrics = ExecutionMetrics()
        with ParallelExecutor(catalog, num_partitions=4, adaptive_enabled=False) as executor:
            executor.execute(join_plan, metrics)
            physical = executor.last_physical_plan
        assert metrics.aqe_replans == 0
        assert metrics.aqe_skew_splits == 0
        assert metrics.shuffle_joins == 1  # the (mis-)planned shuffle executed as planned
        assert [s.describe() for s in physical.strategies()] == [
            s.describe() for s in static.strategies()
        ]
        assert [s.name for s in physical.executed_strategies()] == ["ShuffleHashJoin"]

    def test_replan_event_reason_is_explanatory(self, catalog, join_plan):
        stale_statistics(catalog, "follows", 10_000_000)
        stale_statistics(catalog, "likes", 10_000_000)
        with ParallelExecutor(catalog, num_partitions=4) as executor:
            executor.execute(join_plan, ExecutionMetrics())
            (event,) = executor.adaptive.replan_events
        assert "demoted to broadcast" in event.reason
        assert "ShuffleHashJoin -> BroadcastHashJoin" in event.describe()

    def test_skew_factor_must_exceed_one(self, catalog):
        with pytest.raises(ValueError):
            AdaptivePlanner(catalog, skew_factor=1.0)


class TestObservedFeedback:
    def test_second_run_plans_from_observed_truth(self, catalog, join_plan):
        catalog.remove_statistics("follows")
        catalog.remove_statistics("likes")
        with ParallelExecutor(catalog, num_partitions=4) as executor:
            first = ExecutionMetrics()
            executor.execute(join_plan, first)
            assert first.aqe_replans == 1
            # The first run cached observed cardinalities in the catalog, so
            # the second run's *static* plan already picks broadcast.
            second = ExecutionMetrics()
            executor.execute(join_plan, second)
            physical = executor.last_physical_plan
        assert catalog.observed_rows("follows") == 160
        assert catalog.observed_rows("likes") == 54
        assert isinstance(physical.strategies()[0], BroadcastHashJoin)
        assert second.aqe_replans == 0

    def test_observed_rows_override_stale_statistics(self, catalog):
        stale_statistics(catalog, "follows", 10_000_000)
        catalog.record_observed("follows", 160)
        assert estimate_rows(TableScanNode("follows", ("s", "o")), catalog) == 160
        catalog.clear_observed()
        assert estimate_rows(TableScanNode("follows", ("s", "o")), catalog) == 10_000_000

    def test_per_node_observed_rows_are_recorded(self, catalog, join_plan):
        # The planner records each join input's materialized cardinality,
        # introspectable per plan node after execution.
        with ParallelExecutor(catalog, num_partitions=4) as executor:
            executor.execute(join_plan, ExecutionMetrics())
            assert executor.adaptive.observed_rows(join_plan.left) == 160
            assert executor.adaptive.observed_rows(join_plan.right) == 54
            # reset() clears per-query state at the next execution.
            executor.adaptive.reset()
            assert executor.adaptive.observed_rows(join_plan.left) is None

    def test_reregistration_invalidates_observed_cache(self, catalog):
        # A stale observation must not override statistics freshly derived
        # from re-registered rows (the broadcast-a-huge-table trap again).
        catalog.record_observed("follows", 10)
        catalog.register(
            "follows", Relation(("s", "o"), [(IRI(f"v{i}"), IRI(f"w{i}")) for i in range(500)])
        )
        assert catalog.observed_rows("follows") is None
        assert estimate_rows(TableScanNode("follows", ("s", "o")), catalog) == 500

    def test_adaptive_disabled_records_no_observations(self, catalog, join_plan):
        with ParallelExecutor(catalog, num_partitions=4, adaptive_enabled=False) as executor:
            executor.execute(join_plan, ExecutionMetrics())
        assert catalog.observed_rows("follows") is None

    def test_static_executor_ignores_observations_left_by_adaptive_runs(self, catalog, join_plan):
        # The observed cache lives on the shared catalog, but a
        # adaptive_enabled=False executor must reproduce the static plan
        # exactly — even after an adaptive session populated the cache.
        stale_statistics(catalog, "follows", 10_000_000)
        stale_statistics(catalog, "likes", 10_000_000)
        with ParallelExecutor(catalog, num_partitions=4) as adaptive_executor:
            adaptive_executor.execute(join_plan, ExecutionMetrics())
        assert catalog.observed_rows("likes") == 54
        with ParallelExecutor(catalog, num_partitions=4, adaptive_enabled=False) as static_executor:
            static_executor.execute(join_plan, ExecutionMetrics())
            physical = static_executor.last_physical_plan
        # Stale statistics say huge -> shuffle, regardless of the cache.
        assert isinstance(physical.strategies()[0], ShuffleHashJoin)
        assert estimate_rows(join_plan, catalog, use_observed=False) == 10_000_000


class TestSkewSplitting:
    @pytest.fixture()
    def skewed_catalog(self):
        cat = Catalog()
        hub = [(IRI("hub"), IRI(f"a{i}")) for i in range(300)]
        spread = [(IRI(f"k{j}"), IRI(f"b{j}")) for j in range(40)]
        cat.register("big", Relation(("y", "a"), hub + spread))
        matches = [(IRI("hub"), IRI("m0"))] + [(IRI(f"k{j}"), IRI(f"m{j}")) for j in range(40)]
        cat.register("small", Relation(("y", "b"), matches))
        return cat

    @pytest.fixture()
    def skewed_plan(self):
        return NaturalJoinNode(
            TableScanNode("big", ("y", "a")), TableScanNode("small", ("y", "b"))
        )

    def test_skewed_partition_is_subdivided(self, skewed_catalog, skewed_plan):
        serial = PlanExecutor(skewed_catalog).execute(skewed_plan, ExecutionMetrics())
        metrics = ExecutionMetrics()
        with ParallelExecutor(
            skewed_catalog, num_partitions=4, broadcast_threshold=0, skew_factor=2.0
        ) as executor:
            result = executor.execute(skewed_plan, metrics)
        assert metrics.aqe_skew_splits > 0
        assert metrics.parallel_tasks > 4  # extra chunk tasks beyond one per partition
        assert bag(result) == bag(serial)

    def test_left_outer_join_splits_only_preserved_side(self, skewed_catalog):
        # The *right* side is skewed here; splitting it would fabricate
        # null-padded rows, so the splitter must leave it whole.
        plan = LeftOuterJoinNode(
            TableScanNode("small", ("y", "b")), TableScanNode("big", ("y", "a"))
        )
        serial = PlanExecutor(skewed_catalog).execute(plan, ExecutionMetrics())
        metrics = ExecutionMetrics()
        with ParallelExecutor(
            skewed_catalog, num_partitions=4, broadcast_threshold=0, skew_factor=2.0
        ) as executor:
            result = executor.execute(plan, metrics)
        assert metrics.aqe_skew_splits == 0
        assert bag(result) == bag(serial)

    def test_left_outer_join_with_skewed_preserved_side(self, skewed_catalog):
        plan = LeftOuterJoinNode(
            TableScanNode("big", ("y", "a")), TableScanNode("small", ("y", "b"))
        )
        serial = PlanExecutor(skewed_catalog).execute(plan, ExecutionMetrics())
        metrics = ExecutionMetrics()
        with ParallelExecutor(
            skewed_catalog, num_partitions=4, broadcast_threshold=0, skew_factor=2.0
        ) as executor:
            result = executor.execute(plan, metrics)
        assert metrics.aqe_skew_splits > 0
        assert bag(result) == bag(serial)

    def test_small_partitions_are_never_split(self, catalog, join_plan):
        # Balanced 160-row inputs: nothing exceeds skew_factor x median.
        metrics = ExecutionMetrics()
        with ParallelExecutor(catalog, num_partitions=4, broadcast_threshold=0) as executor:
            executor.execute(join_plan, metrics)
        assert metrics.aqe_skew_splits == 0
        assert metrics.parallel_tasks == 4

    def test_aligned_stored_buckets_are_not_resplit(self):
        cat = Catalog()
        hub = [(IRI("hub"), IRI(f"a{i}")) for i in range(200)]
        spread = [(IRI(f"k{j}"), IRI(f"b{j}")) for j in range(40)]
        base = Relation(("y", "a"), hub + spread)
        parts = HashPartitioner(4).partition(base, ["y"])
        ordered = [row for part in parts for row in part.rows]
        tagged = Relation(
            ("y", "a"),
            ordered,
            partitioning=Partitioning(("y",), tuple(len(p) for p in parts)),
        )
        cat.register("bucketed", tagged)
        cat.register(
            "other", Relation(("y", "c"), [(IRI(f"k{j}"), IRI(f"c{j}")) for j in range(40)] + [(IRI("hub"), IRI("c"))])
        )
        plan = NaturalJoinNode(
            TableScanNode("bucketed", ("y", "a")), TableScanNode("other", ("y", "c"))
        )
        serial = PlanExecutor(cat).execute(plan, ExecutionMetrics())
        metrics = ExecutionMetrics()
        with ParallelExecutor(cat, num_partitions=4, broadcast_threshold=0, skew_factor=2.0) as executor:
            result = executor.execute(plan, metrics)
        # The bucketed side is skewed, but it came pre-partitioned from the
        # store: its buckets are consumed as-is, never subdivided.
        assert metrics.partition_aligned_inputs == 1
        assert metrics.aqe_skew_splits == 0
        assert metrics.parallel_tasks == 4
        assert bag(result) == bag(serial)


class TestPlannedVsExecutedReconciliation:
    def test_keyless_left_outer_join_fallback_is_explicit(self, catalog):
        # Planner annotates a keyless outer join BroadcastHashJoin, but the
        # executor runs it serially; the executed plan must say so instead of
        # pretending a broadcast happened.
        plan = LeftOuterJoinNode(
            SubqueryNode("follows", (("s", "a"), ("o", "b"))),
            SubqueryNode("likes", (("s", "c"), ("o", "d"))),
        )
        metrics = ExecutionMetrics()
        with ParallelExecutor(catalog, num_partitions=4) as executor:
            executor.execute(plan, metrics)
            physical = executor.last_physical_plan
        assert physical.counts()["BroadcastHashJoin"] == 1
        executed = physical.counts(executed=True)
        assert executed["BroadcastHashJoin"] == 0
        assert executed["SerialJoin"] == 1
        assert metrics.broadcast_joins == 0  # now agrees with the executed plan
        assert metrics.shuffle_joins == 0
        (fallback,) = [s for s in physical.executed_strategies() if isinstance(s, SerialJoin)]
        assert fallback.reason == "cross join"
        assert len(physical.replans()) == 1

    def test_single_partition_fallback_reason(self, catalog, join_plan):
        with ParallelExecutor(catalog, num_partitions=1) as executor:
            executor.execute(join_plan, ExecutionMetrics())
            physical = executor.last_physical_plan
        (strategy,) = physical.executed_strategies()
        assert isinstance(strategy, SerialJoin)
        assert strategy.reason == "single partition"

    def test_executed_counts_match_strategy_metrics(self, catalog, join_plan):
        metrics = ExecutionMetrics()
        with ParallelExecutor(catalog, num_partitions=4, broadcast_threshold=0) as executor:
            executor.execute(join_plan, metrics)
            physical = executor.last_physical_plan
        executed = physical.counts(executed=True)
        assert executed["ShuffleHashJoin"] == metrics.shuffle_joins
        assert executed["BroadcastHashJoin"] == metrics.broadcast_joins


class TestSessionIntegration:
    @pytest.fixture()
    def session_graph(self):
        from repro.rdf.graph import Graph
        from repro.rdf.triple import Triple

        triples = []
        for i in range(60):
            triples.append(Triple(IRI(f"u{i}"), IRI("follows"), IRI(f"u{(i * 7) % 30}")))
        for i in range(0, 60, 2):
            triples.append(Triple(IRI(f"u{i}"), IRI("likes"), IRI(f"p{i % 6}")))
        return Graph(triples)

    def test_session_surfaces_replans(self, session_graph):
        from repro.core.session import S2RDFSession

        session = S2RDFSession.from_graph(session_graph, num_partitions=4)
        catalog = session.layout.catalog
        for name in list(catalog.statistics_names()):
            catalog.remove_statistics(name)
        result = session.query(
            "SELECT * WHERE { ?x <follows> ?y . ?y <likes> ?z }"
        )
        assert result.metrics.aqe_replans >= 1
        assert result.replanned_joins  # "initial -> executed" rendering
        assert result.join_strategies != result.executed_join_strategies
        assert any("BroadcastHashJoin" in s for s in result.executed_join_strategies)
        session.close()

    def test_adaptive_off_session_keeps_static_strategies(self, session_graph):
        from repro.core.session import S2RDFSession

        session = S2RDFSession.from_graph(
            session_graph, num_partitions=4, adaptive_enabled=False, broadcast_threshold=0
        )
        result = session.query("SELECT * WHERE { ?x <follows> ?y . ?y <likes> ?z }")
        assert result.metrics.aqe_replans == 0
        assert all("ShuffleHashJoin" in s for s in result.join_strategies)
        assert all("ShuffleHashJoin" in s for s in result.executed_join_strategies)
        session.close()


class TestStoredReregistration:
    """``register_stored`` re-registration (incremental appends) must drop
    every cache of the previous table incarnation: the AQE observed-
    cardinality cache *and* the decoded-rows cache — otherwise the planner
    replans from pre-append row counts and scans return pre-append rows."""

    class _FakeProvider:
        def __init__(self, relation):
            self.relation = relation

        def read(self):
            return self.relation

        def scan(self, columns=None, conditions=None):
            from repro.engine.catalog import ScanResult

            return ScanResult(relation=self.relation, rows_scanned=len(self.relation))

    def test_reregister_stored_drops_observed_and_decoded_caches(self):
        from repro.engine.catalog import Catalog, TableStatistics

        catalog = Catalog()
        small = Relation(("s", "o"), [(IRI("a"), IRI("b"))])
        catalog.register_stored(
            "t", self._FakeProvider(small), TableStatistics(name="t", row_count=1)
        )
        assert len(catalog.table("t")) == 1  # decodes and caches the rows
        catalog.record_observed("t", 1)

        grown = Relation(("s", "o"), [(IRI(f"x{i}"), IRI(f"y{i}")) for i in range(50)])
        catalog.register_stored(
            "t", self._FakeProvider(grown), TableStatistics(name="t", row_count=50)
        )
        assert catalog.observed_rows("t") is None
        assert len(catalog.table("t")) == 50  # not the stale decoded cache
        assert estimate_rows(TableScanNode("t", ("s", "o")), catalog) == 50

    def test_append_invalidates_observed_cardinalities(self, tmp_path):
        """End to end: query, append, and the next plan must use post-append
        row counts instead of the first run's observed cardinalities."""
        from repro.core.session import S2RDFSession
        from repro.rdf.graph import Graph
        from repro.rdf.triple import Triple

        triples = [Triple(IRI(f"u{i}"), IRI("follows"), IRI(f"u{(i * 3) % 20}")) for i in range(40)]
        triples += [Triple(IRI(f"u{i}"), IRI("likes"), IRI(f"p{i % 4}")) for i in range(0, 40, 2)]
        warm = S2RDFSession.from_graph(Graph(triples), num_partitions=4)
        path = str(tmp_path / "dataset")
        warm.save_dataset(path)
        warm.close()

        # use_extvp=False pins table selection to the VP tables, so the
        # observed-cardinality assertions target a deterministic table name.
        session = S2RDFSession.open_dataset(path, use_extvp=False)
        try:
            catalog = session.layout.catalog
            session.query("SELECT * WHERE { ?x <follows> ?y . ?y <likes> ?z }")
            assert catalog.observed_rows("vp_follows") == 40  # AQE feedback cached

            new = [Triple(IRI(f"v{i}"), IRI("follows"), IRI(f"u{i % 20}")) for i in range(60)]
            session.append_triples(new)
            # The observation describes the pre-append table; it must be gone,
            # and planning must see the manifest's post-append statistics.
            assert catalog.observed_rows("vp_follows") is None
            assert estimate_rows(TableScanNode("vp_follows", ("s", "o")), catalog) == 100
            assert len(catalog.table("vp_follows")) == 100  # no stale decode either
            # A rerun repopulates the cache from post-append truth.
            session.query("SELECT * WHERE { ?x <follows> ?y . ?y <likes> ?z }")
            assert catalog.observed_rows("vp_follows") == 100
        finally:
            session.close()
