"""Fields audit for ExecutionMetrics.

``merge``/``copy``/``scaled``/``as_dict`` are derived from
``dataclasses.fields()``; the only lockstep obligation left when adding a
counter is classifying it into a scaling category.  These tests synthesize a
distinct value for *every* field so a new field that slips past any of the
derived methods — or arrives unclassified — fails loudly."""

import dataclasses

import pytest

from repro.engine.metrics import ExecutionMetrics


def synthesized() -> ExecutionMetrics:
    """An instance where every field holds a distinct, recognizable value."""
    metrics = ExecutionMetrics()
    for index, name in enumerate(ExecutionMetrics.field_names(), start=1):
        current = getattr(metrics, name)
        if isinstance(current, dict):
            setattr(metrics, name, {"t1": index * 10, "t2": index * 10 + 1})
        elif isinstance(current, float):
            setattr(metrics, name, index * 10 + 0.5)
        else:
            setattr(metrics, name, index * 10)
    return metrics


def test_every_field_is_classified():
    """Each field belongs to exactly one scaling category (or is structural),
    and the category sets never reference a field that no longer exists."""
    names = set(ExecutionMetrics.field_names())
    assert ExecutionMetrics.DATA_PROPORTIONAL <= names
    assert ExecutionMetrics.UNSCALED_TIMINGS <= names
    assert not (ExecutionMetrics.DATA_PROPORTIONAL & ExecutionMetrics.UNSCALED_TIMINGS)
    # The ClassVar category sets must not have leaked in as dataclass fields.
    assert "DATA_PROPORTIONAL" not in names
    assert "UNSCALED_TIMINGS" not in names


def test_timing_fields_are_floats_and_classified():
    """Any float-typed counter is a wall-clock measurement and must be in
    UNSCALED_TIMINGS — scaling observed time by a data factor is wrong."""
    for field in dataclasses.fields(ExecutionMetrics):
        if field.type in ("float", float):
            assert field.name in ExecutionMetrics.UNSCALED_TIMINGS, field.name


def test_merge_covers_every_field():
    merged = synthesized()
    merged.merge(synthesized())
    for name in ExecutionMetrics.field_names():
        expected = getattr(synthesized(), name)
        value = getattr(merged, name)
        if isinstance(expected, dict):
            assert value == {k: v * 2 for k, v in expected.items()}, name
        else:
            assert value == expected * 2, name


def test_copy_covers_every_field_and_is_deep_for_dicts():
    original = synthesized()
    clone = original.copy()
    for name in ExecutionMetrics.field_names():
        assert getattr(clone, name) == getattr(original, name), name
    clone.scanned_tables["t1"] += 100
    clone.input_tuples += 1
    assert original.scanned_tables != clone.scanned_tables
    assert original.input_tuples != clone.input_tuples


def test_scaled_applies_the_declared_categories():
    original = synthesized()
    scaled = original.scaled(3.0)
    for name in ExecutionMetrics.field_names():
        before = getattr(original, name)
        after = getattr(scaled, name)
        if name in ExecutionMetrics.DATA_PROPORTIONAL:
            if isinstance(before, dict):
                assert after == {k: int(v * 3.0) for k, v in before.items()}, name
            else:
                assert after == int(before * 3.0), name
        else:
            # Structural counters and observed timings pass through unscaled.
            assert after == before, name
    # scaled() must not mutate the source.
    for name in ExecutionMetrics.field_names():
        assert getattr(original, name) == getattr(synthesized(), name), name


def test_as_dict_covers_every_field():
    metrics = synthesized()
    out = metrics.as_dict()
    assert set(out) == set(ExecutionMetrics.field_names())
    for name, value in out.items():
        original = getattr(metrics, name)
        if isinstance(original, float):
            assert value == round(original, 3), name
        else:
            assert value == original, name
    # The exported dict is detached from the live instance.
    out["scanned_tables"]["t1"] = -1
    assert metrics.scanned_tables["t1"] != -1


def test_recorders_feed_the_expected_fields():
    metrics = ExecutionMetrics()
    metrics.record_scan("VP_follows", 10)
    metrics.record_join(4, 6, 24, 5)
    metrics.record_shuffle(1000, tasks=4)
    metrics.record_broadcast(200, tasks=4)
    metrics.record_critical_path(1.5)
    metrics.record_segment_scan(scanned=3, pruned=5)
    metrics.record_aligned_input()
    metrics.record_replan()
    metrics.record_skew_split(2)
    assert metrics.input_tuples == 10
    assert metrics.scanned_tables == {"VP_follows": 10}
    assert metrics.shuffled_tuples == 10
    assert metrics.join_comparisons == 24
    assert metrics.intermediate_tuples == 5
    assert metrics.shuffle_joins == 1 and metrics.shuffled_bytes == 1000
    assert metrics.broadcast_joins == 1 and metrics.broadcast_bytes == 200
    assert metrics.parallel_tasks == 8
    assert metrics.critical_path_ms == 1.5
    assert metrics.store_segments_scanned == 3 and metrics.store_segments_pruned == 5
    assert metrics.partition_aligned_inputs == 1
    assert metrics.aqe_replans == 1
    assert metrics.aqe_skew_splits == 2


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
