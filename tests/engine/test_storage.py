"""Unit tests for the Parquet-like size model and the simulated HDFS."""

import pytest

from repro.engine.relation import Relation
from repro.engine.storage import HdfsSimulator, ParquetSizeModel, format_bytes
from repro.rdf.terms import IRI


def make_relation(rows):
    return Relation(("s", "o"), rows)


class TestParquetSizeModel:
    def test_empty_relation_has_metadata_only(self):
        model = ParquetSizeModel()
        assert model.estimate_bytes(Relation((), [])) == model.metadata_bytes

    def test_size_grows_with_rows(self):
        model = ParquetSizeModel()
        small = make_relation([(IRI(f"s{i}"), IRI(f"o{i}")) for i in range(10)])
        large = make_relation([(IRI(f"s{i}"), IRI(f"o{i}")) for i in range(1000)])
        assert model.estimate_bytes(large) > model.estimate_bytes(small)

    def test_dictionary_encoding_rewards_repetition(self):
        model = ParquetSizeModel()
        repeated = make_relation([(IRI("s"), IRI("o"))] * 500)
        distinct = make_relation([(IRI(f"s{i}"), IRI(f"o{i}")) for i in range(500)])
        assert model.estimate_bytes(repeated) < model.estimate_bytes(distinct)

    def test_column_stats(self):
        model = ParquetSizeModel()
        relation = make_relation([(IRI("a"), IRI("x")), (IRI("a"), IRI("y"))])
        stats = model.column_stats(relation, "s")
        assert stats.distinct_count == 1
        assert stats.row_count == 2
        assert stats.run_length_runs == 1

    def test_ntriples_estimate_larger_than_parquet(self):
        model = ParquetSizeModel()
        relation = make_relation([(IRI("http://example.org/s"), IRI("http://example.org/o"))] * 200)
        assert model.estimate_ntriples_bytes(relation) > model.estimate_bytes(relation)


class TestParquetSizeModelEdgeCases:
    """Boundary accounting: empty relations, all-None columns, single rows."""

    def test_empty_relation_with_columns(self):
        model = ParquetSizeModel()
        empty = Relation(("s", "o"), [])
        stats = model.column_stats(empty, "s")
        assert stats.row_count == 0
        assert stats.distinct_count == 0
        assert stats.run_length_runs == 0
        assert stats.data_bytes == 0
        assert stats.dictionary_bytes == 0
        # Only metadata plus the per-column page overhead remains.
        assert model.estimate_bytes(empty) == model.metadata_bytes + 2 * model.page_overhead_bytes

    def test_empty_relation_ntriples_estimate_is_zero(self):
        model = ParquetSizeModel()
        assert model.estimate_ntriples_bytes(Relation(("s", "o"), [])) == 0

    def test_all_none_column(self):
        model = ParquetSizeModel()
        relation = Relation(("s", "o"), [(IRI("a"), None)] * 10)
        stats = model.column_stats(relation, "o")
        assert stats.row_count == 10
        assert stats.distinct_count == 1
        # One run of ten equal (None) values, one 1-byte dictionary entry.
        assert stats.run_length_runs == 1
        assert stats.dictionary_bytes == 1
        assert stats.total_bytes >= 1

    def test_single_row_table(self):
        model = ParquetSizeModel()
        relation = make_relation([(IRI("only-subject"), IRI("only-object"))])
        for column in relation.columns:
            stats = model.column_stats(relation, column)
            assert stats.row_count == 1
            assert stats.distinct_count == 1
            assert stats.run_length_runs == 1
            assert stats.data_bytes >= 1
        assert model.estimate_bytes(relation) > model.metadata_bytes

    def test_single_row_smaller_than_many_rows(self):
        model = ParquetSizeModel()
        single = make_relation([(IRI("s"), IRI("o"))])
        many = make_relation([(IRI(f"s{i}"), IRI(f"o{i}")) for i in range(100)])
        assert model.estimate_bytes(single) < model.estimate_bytes(many)


class TestHdfsSimulator:
    def test_write_and_read_metadata(self):
        hdfs = HdfsSimulator()
        stored = hdfs.write("layout/table.parquet", make_relation([(IRI("a"), IRI("b"))]))
        assert hdfs.exists("layout/table.parquet")
        assert hdfs.file("layout/table.parquet") == stored
        assert stored.row_count == 1

    def test_total_bytes_by_prefix(self):
        hdfs = HdfsSimulator()
        hdfs.write("vp/a.parquet", make_relation([(IRI("a"), IRI("b"))] * 10))
        hdfs.write("extvp/b.parquet", make_relation([(IRI("a"), IRI("b"))] * 10))
        assert hdfs.total_bytes("vp/") < hdfs.total_bytes()
        assert hdfs.file_count() == 2
        assert hdfs.total_rows() == 20

    def test_overwrite_replaces(self):
        hdfs = HdfsSimulator()
        hdfs.write("x", make_relation([(IRI("a"), IRI("b"))]))
        hdfs.write("x", make_relation([(IRI("a"), IRI("b"))] * 5))
        assert hdfs.file("x").row_count == 5
        assert hdfs.file_count() == 1

    def test_delete(self):
        hdfs = HdfsSimulator()
        hdfs.write("x", make_relation([]))
        hdfs.delete("x")
        assert not hdfs.exists("x")

    def test_write_text_uses_row_format(self):
        hdfs = HdfsSimulator()
        relation = make_relation([(IRI("http://e/s"), IRI("http://e/o"))] * 100)
        parquet = hdfs.write("a.parquet", relation)
        text = hdfs.write_text("a.nt", relation)
        assert text.size_bytes > parquet.size_bytes


class TestFormatBytes:
    @pytest.mark.parametrize(
        "size, expected",
        [(10, "10 B"), (2048, "2.0 KB"), (5 * 1024 * 1024, "5.0 MB")],
    )
    def test_formatting(self, size, expected):
        assert format_bytes(size) == expected
