"""Unit and property tests for the Relation operators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.metrics import ExecutionMetrics
from repro.engine.relation import Relation, SchemaError


@pytest.fixture
def people():
    return Relation(("name", "city"), [("ada", "london"), ("alan", "cambridge"), ("grace", "nyc")])


@pytest.fixture
def jobs():
    return Relation(("name", "job"), [("ada", "math"), ("alan", "cs"), ("alan", "crypto")])


class TestBasics:
    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            Relation(("a", "a"), [])

    def test_row_arity_checked(self):
        with pytest.raises(SchemaError):
            Relation(("a", "b"), [(1,)])

    def test_len_and_iter(self, people):
        assert len(people) == 3
        assert ("ada", "london") in list(people)

    def test_column_values_and_distinct(self, jobs):
        assert jobs.column_values("name") == ["ada", "alan", "alan"]
        assert jobs.distinct_count("name") == 2

    def test_unknown_column(self, people):
        with pytest.raises(SchemaError):
            people.column_index("nope")

    def test_to_dicts(self, people):
        assert {"name": "ada", "city": "london"} in people.to_dicts()

    def test_from_dicts(self):
        relation = Relation.from_dicts(("a", "b"), [{"a": 1}, {"a": 2, "b": 3}])
        assert relation.rows == [(1, None), (2, 3)]

    def test_equality_is_bag_equality(self):
        left = Relation(("a",), [(1,), (2,)])
        right = Relation(("a",), [(2,), (1,)])
        assert left == right

    def test_hash_consistent_with_equality(self):
        left = Relation(("a",), [(1,), (2,)])
        right = Relation(("a",), [(2,), (1,)])
        assert hash(left) == hash(right)
        assert len({left, right}) == 1

    def test_hashable_in_sets_and_dicts(self):
        """Relations must be usable as set members / dict keys (store code)."""
        one = Relation(("a",), [(1,)])
        other = Relation(("a",), [(2,)])
        assert {one: "x"}[Relation(("a",), [(1,)])] == "x"
        assert len({one, other}) == 2

    def test_hash_distinguishes_columns(self):
        assert hash(Relation(("a",), [(1,)])) != hash(Relation(("b",), [(1,)]))

    def test_equality_under_shuffled_column_order(self):
        """Regression: equality must align values by column *name*, not by
        position or by the sorted textual repr of whole rows.  The same
        logical rows stated under a permuted column order are equal; the
        same positional tuples under a permuted column order are not."""
        left = Relation(("a", "b"), [(1, "x"), (2, "y")])
        permuted_same = Relation(("b", "a"), [("y", 2), ("x", 1)])
        permuted_different = Relation(("b", "a"), [(1, "x"), (2, "y")])
        assert left == permuted_same
        assert hash(left) == hash(permuted_same)
        assert left != permuted_different

    def test_equality_not_fooled_by_repr_collisions(self):
        """Bag equality compares values, not concatenated row reprs."""
        left = Relation(("a", "b"), [("x", "y,z")])
        right = Relation(("a", "b"), [("x,y", "z")])
        assert left != right

    def test_non_relation_comparison(self):
        assert Relation(("a",), [(1,)]) != "not a relation"


class TestUnaryOperators:
    def test_project_reorders_and_drops(self, people):
        projected = people.project(["city"])
        assert projected.columns == ("city",)
        assert len(projected) == 3

    def test_project_duplicates_collapse(self, people):
        assert people.project(["name", "name"]).columns == ("name",)

    def test_rename(self, people):
        renamed = people.rename({"name": "person"})
        assert renamed.columns == ("person", "city")

    def test_rename_unknown_column(self, people):
        with pytest.raises(SchemaError):
            people.rename({"nope": "x"})

    def test_select_predicate(self, people):
        assert len(people.select(lambda row: row["city"] == "london")) == 1

    def test_select_eq(self, jobs):
        assert len(jobs.select_eq({"name": "alan"})) == 2

    def test_distinct(self):
        relation = Relation(("a",), [(1,), (1,), (2,)])
        assert len(relation.distinct()) == 2

    def test_order_by_ascending_and_descending(self, people):
        ascending = people.order_by([("name", True)]).column_values("name")
        assert ascending == ["ada", "alan", "grace"]
        descending = people.order_by([("name", False)]).column_values("name")
        assert descending == ["grace", "alan", "ada"]

    def test_order_by_none_sorts_last(self):
        relation = Relation(("a",), [(None,), (1,), (2,)])
        assert relation.order_by([("a", True)]).column_values("a") == [1, 2, None]

    def test_limit_and_offset(self, people):
        assert len(people.limit(2)) == 2
        assert len(people.limit(2, offset=2)) == 1
        assert len(people.limit(None, offset=1)) == 2


class TestTopK:
    """``top_k`` must return exactly ``order_by(keys).limit(count, offset)``
    without materialising the full sort — including descending keys, NULL
    placement and tie stability."""

    def test_matches_order_by_limit(self, people):
        for keys in ([("name", True)], [("name", False)], [("city", True), ("name", False)]):
            expected = people.order_by(keys).limit(2)
            assert people.top_k(keys, 2).rows == expected.rows, keys

    def test_offset(self, people):
        expected = people.order_by([("name", True)]).limit(1, offset=1)
        assert people.top_k([("name", True)], 1, offset=1).rows == expected.rows

    def test_none_placement_matches_order_by(self):
        relation = Relation(("a",), [(None,), (1,), (2,), (None,)])
        for ascending in (True, False):
            keys = [("a", ascending)]
            expected = relation.order_by(keys).limit(3)
            assert relation.top_k(keys, 3).rows == expected.rows, ascending

    def test_ties_keep_original_row_order(self):
        relation = Relation(("k", "tag"), [(1, "first"), (0, "x"), (1, "second"), (1, "third")])
        top = relation.top_k([("k", True)], 3)
        assert top.rows == [(0, "x"), (1, "first"), (1, "second")]

    def test_count_larger_than_relation(self, people):
        keys = [("name", True)]
        assert people.top_k(keys, 99).rows == people.order_by(keys).rows

    @given(
        rows=st.lists(
            st.tuples(
                st.one_of(st.none(), st.integers(-5, 5)),
                st.integers(0, 3),
            ),
            max_size=30,
        ),
        count=st.integers(1, 10),
        offset=st.integers(0, 5),
        first_ascending=st.booleans(),
        second_ascending=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_equivalent_to_sort_then_limit(
        self, rows, count, offset, first_ascending, second_ascending
    ):
        relation = Relation(("a", "b"), rows)
        keys = [("a", first_ascending), ("b", second_ascending)]
        expected = relation.order_by(keys).limit(count, offset=offset)
        assert relation.top_k(keys, count, offset=offset).rows == expected.rows


class TestAggregate:
    @pytest.fixture
    def scores(self):
        return Relation(
            ("player", "score"),
            [("ada", 3), ("ada", 5), ("alan", 2), ("alan", 2), ("grace", None)],
        )

    def spec(self, function, column, alias="out", distinct=False):
        from repro.engine.ops import AggregateSpec

        return AggregateSpec(function=function, column=column, alias=alias, distinct=distinct)

    def test_grouped_in_first_seen_order(self, scores):
        result = scores.aggregate(["player"], [self.spec("sum", "score")])
        assert result.columns == ("player", "out")
        assert result.rows == [("ada", 8), ("alan", 4), ("grace", 0)]

    def test_nones_excluded_from_arguments(self, scores):
        result = scores.aggregate(["player"], [self.spec("count", "score")])
        assert result.rows == [("ada", 2), ("alan", 2), ("grace", 0)]

    def test_count_star_counts_rows_not_values(self, scores):
        result = scores.aggregate(["player"], [self.spec("count", None)])
        assert result.rows == [("ada", 2), ("alan", 2), ("grace", 1)]

    def test_distinct_dedups_before_aggregating(self, scores):
        result = scores.aggregate([], [self.spec("sum", "score", distinct=True)])
        assert result.rows == [(3 + 5 + 2,)]

    def test_implicit_group_on_empty_input_yields_one_row(self):
        empty = Relation(("v",), [])
        result = empty.aggregate(
            [],
            [self.spec("count", "v", "n"), self.spec("sum", "v", "s"),
             self.spec("min", "v", "lo")],
        )
        # SPARQL: empty COUNT/SUM are 0, MIN of nothing is unbound.
        assert result.columns == ("n", "s", "lo")
        assert result.rows == [(0, 0, None)]

    def test_avg(self, scores):
        result = scores.aggregate([], [self.spec("avg", "score")])
        assert result.rows == [(3.0,)]

    def test_aggregate_value_shared_semantics(self):
        from repro.engine.relation import aggregate_value

        assert aggregate_value("count", [1, 1, 2], distinct=True) == 2
        assert aggregate_value("sum", [], distinct=False) == 0
        assert aggregate_value("avg", [], distinct=False) == 0
        assert aggregate_value("min", [], distinct=False) is None
        assert aggregate_value("max", [2, 10], distinct=False) == 10


class TestJoins:
    def test_natural_join(self, people, jobs):
        joined = people.natural_join(jobs)
        assert set(joined.columns) == {"name", "city", "job"}
        assert len(joined) == 3  # ada x1, alan x2

    def test_natural_join_metrics(self, people, jobs):
        metrics = ExecutionMetrics()
        people.natural_join(jobs, metrics)
        assert metrics.joins == 1
        assert metrics.shuffled_tuples == len(people) + len(jobs)
        assert metrics.join_comparisons >= 3

    def test_cross_join_when_no_shared_columns(self):
        left = Relation(("a",), [(1,), (2,)])
        right = Relation(("b",), [(3,)])
        assert len(left.natural_join(right)) == 2

    def test_left_outer_join_keeps_unmatched(self, people, jobs):
        joined = people.left_outer_join(jobs)
        grace_rows = [row for row in joined.to_dicts() if row["name"] == "grace"]
        assert grace_rows and grace_rows[0]["job"] is None

    def test_semi_join(self, people, jobs):
        reduced = people.semi_join(jobs, on=[("name", "name")])
        assert {row[0] for row in reduced} == {"ada", "alan"}

    def test_anti_join(self, people, jobs):
        reduced = people.anti_join(jobs, on=[("name", "name")])
        assert {row[0] for row in reduced} == {"grace"}

    def test_semi_join_is_subset(self, people, jobs):
        reduced = people.semi_join(jobs, on=[("name", "name")])
        assert all(row in people.rows for row in reduced.rows)

    def test_union_same_schema(self, people):
        doubled = people.union(people)
        assert len(doubled) == 6

    def test_union_different_schema_pads_with_none(self):
        left = Relation(("a",), [(1,)])
        right = Relation(("b",), [(2,)])
        merged = left.union(right)
        assert set(merged.columns) == {"a", "b"}
        assert len(merged) == 2


_values = st.integers(min_value=0, max_value=5)
_rows = st.lists(st.tuples(_values, _values), max_size=25)


class TestJoinProperties:
    @given(left_rows=_rows, right_rows=_rows)
    @settings(max_examples=60, deadline=None)
    def test_natural_join_matches_nested_loop(self, left_rows, right_rows):
        """Hash join must agree with a naive nested-loop join."""
        left = Relation(("a", "b"), left_rows)
        right = Relation(("b", "c"), right_rows)
        joined = left.natural_join(right)
        expected = sorted(
            (la, lb, rc) for (la, lb) in left_rows for (rb, rc) in right_rows if lb == rb
        )
        assert sorted(joined.rows) == expected

    @given(left_rows=_rows, right_rows=_rows)
    @settings(max_examples=60, deadline=None)
    def test_semi_join_equivalent_to_filtered_join(self, left_rows, right_rows):
        """x ⋉ y == rows of x that appear in the join (paper's decomposition)."""
        left = Relation(("a", "b"), left_rows)
        right = Relation(("b", "c"), right_rows)
        semi = left.semi_join(right, on=[("b", "b")])
        right_keys = {rb for (rb, _) in right_rows}
        expected = [row for row in left_rows if row[1] in right_keys]
        assert sorted(semi.rows) == sorted(expected)

    @given(left_rows=_rows, right_rows=_rows)
    @settings(max_examples=40, deadline=None)
    def test_left_outer_join_preserves_left_cardinality_lower_bound(self, left_rows, right_rows):
        left = Relation(("a", "b"), left_rows)
        right = Relation(("b", "c"), right_rows)
        joined = left.left_outer_join(right)
        assert len(joined) >= len(left)
        # Every left row key must still be present.
        assert {row[0] for row in joined.rows} >= {row[0] for row in left_rows}

    @given(rows=_rows)
    @settings(max_examples=40, deadline=None)
    def test_distinct_idempotent(self, rows):
        relation = Relation(("a", "b"), rows)
        once = relation.distinct()
        assert once == once.distinct()
        assert len(once) == len(set(rows))
