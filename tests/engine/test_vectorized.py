"""Unit tests for the vectorized id-column execution kernels.

The contract under test: every :class:`ColumnBatch` kernel must produce the
same bag of rows as the corresponding :class:`Relation` operator once the
batch is lowered through ``to_relation`` — including the edge shapes the
selection-vector representation makes easy to get wrong (empty batches,
all-selected batches, RLE run boundaries) — and ids outside the dictionary
must be rejected at the decode boundary, never silently mapped to a term.
"""

from array import array

import pytest

from repro.core.session import S2RDFSession
from repro.engine.metrics import ExecutionMetrics
from repro.engine.relation import Relation, SchemaError
from repro.engine.storage import (
    NULL_ID,
    decode_id_column,
    decode_id_column_array,
    encode_id_column,
)
from repro.engine.vectorized import (
    BYTES_PER_ID,
    ColumnBatch,
    PartitionedBatch,
    concat_batches,
    null_column,
)
from repro.rdf.graph import Graph
from repro.rdf.terms import IRI
from repro.rdf.triple import Triple

#: A tiny injective dictionary: id -> term, plus a decode that rejects
#: anything outside it — the same contract the stored dictionary enforces.
TERMS = {i: IRI(f"t{i}") for i in range(10)}


def decode(term_id: int):
    try:
        return TERMS[term_id]
    except KeyError:
        raise KeyError(f"unknown term id {term_id}") from None


def batch(columns, rows, selection=None):
    ids = [array("q", (row[i] for row in rows)) for i in range(len(columns))]
    sel = None if selection is None else array("q", selection)
    return ColumnBatch(columns, ids, decode, selection=sel)


def bag(relation):
    return sorted(map(repr, relation.rows))


class TestBatchBasics:
    def test_empty_batch(self):
        empty = ColumnBatch.empty(("a", "b"), decode)
        assert len(empty) == 0
        assert empty.estimated_bytes() == 0
        relation = empty.to_relation()
        assert relation.columns == ("a", "b")
        assert relation.rows == []
        # Every kernel must tolerate the empty shape.
        assert len(empty.filter_equal("a", 3)) == 0
        assert len(empty.distinct()) == 0
        assert len(empty.limit(5)) == 0
        assert len(empty.natural_join(empty)) == 0

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            ColumnBatch(("a", "a"), [array("q"), array("q")], decode)

    def test_unequal_column_lengths_rejected(self):
        with pytest.raises(SchemaError):
            ColumnBatch(("a", "b"), [array("q", [1]), array("q")], decode)

    def test_all_selected_equals_no_selection(self):
        rows = [(1, 2), (3, 4), (5, 6)]
        implicit = batch(("a", "b"), rows)
        explicit = batch(("a", "b"), rows, selection=range(3))
        assert len(implicit) == len(explicit) == 3
        assert bag(implicit.to_relation()) == bag(explicit.to_relation())
        assert bag(implicit.distinct().to_relation()) == bag(
            explicit.distinct().to_relation()
        )

    def test_selection_narrows_without_copying(self):
        b = batch(("a",), [(1,), (2,), (3,)], selection=[2, 0])
        assert len(b) == 2
        # Order follows the selection vector, not physical order.
        assert [row[0] for row in b.to_relation().rows] == [TERMS[3], TERMS[1]]
        assert b.ids is b.filter_equal("a", 3).ids  # shared columns, new selection

    def test_estimated_bytes_counts_ids(self):
        b = batch(("a", "b"), [(1, 2), (3, 4)])
        assert b.estimated_bytes() == 2 * 2 * BYTES_PER_ID


class TestRLEDecoding:
    def test_run_boundaries_expand_exactly(self):
        """Runs of length 1 and >1, at the start, middle and end of a page."""
        ids = [5] + [7] * 4 + [NULL_ID] * 2 + [5, 9]
        page = encode_id_column(ids)
        expanded = decode_id_column_array(page)
        assert expanded.typecode == "q"
        assert list(expanded) == ids
        assert decode_id_column(page) == ids

    def test_single_run_and_empty_column(self):
        assert list(decode_id_column_array(encode_id_column([3] * 100))) == [3] * 100
        assert list(decode_id_column_array(encode_id_column([]))) == []

    def test_batch_over_run_boundaries_filters_correctly(self):
        """A filter on a column whose matches straddle run boundaries."""
        ids = [1] * 3 + [2] * 2 + [1] + [3] * 4 + [1]
        column = decode_id_column_array(encode_id_column(ids))
        b = ColumnBatch(("a",), [column], decode)
        kept = b.filter_equal("a", 1)
        assert len(kept) == 5
        assert all(row == (TERMS[1],) for row in kept.to_relation().rows)


class TestKernelsMatchRelation:
    def rows(self):
        return [(1, 2), (3, 2), (1, 4), (5, NULL_ID), (1, 2)]

    def relation(self):
        return Relation(
            ("a", "b"),
            [
                tuple(None if v == NULL_ID else TERMS[v] for v in row)
                for row in self.rows()
            ],
        )

    def test_filter_equal(self):
        expected = self.relation().select_eq({"a": TERMS[1]})
        actual = batch(("a", "b"), self.rows()).filter_equal("a", 1).to_relation()
        assert bag(actual) == bag(expected)

    def test_select_ids_memoises_per_distinct_id(self):
        calls = []

        def predicate(term_id):
            calls.append(term_id)
            return term_id != NULL_ID and decode(term_id).value > "t2"

        b = batch(("a", "b"), self.rows()).select_ids("b", predicate)
        assert sorted(calls) == sorted({row[1] for row in self.rows()})  # distinct only
        expected = self.relation().select(lambda r: r["b"] is not None and r["b"].value > "t2")
        assert bag(b.to_relation()) == bag(expected)

    def test_project_rename_distinct_limit(self):
        b = batch(("a", "b"), self.rows())
        assert bag(b.project(["b"]).to_relation()) == bag(self.relation().project(["b"]))
        assert bag(b.rename({"a": "x"}).to_relation()) == bag(
            self.relation().rename({"a": "x"})
        )
        assert bag(b.distinct().to_relation()) == bag(self.relation().distinct())
        assert bag(b.limit(2, offset=1).to_relation()) == bag(
            self.relation().limit(2, offset=1)
        )

    def test_natural_join_matches_relation_including_nulls(self):
        left_rows = [(1, 2), (3, NULL_ID), (5, 2)]
        right_rows = [(2, 7), (NULL_ID, 8), (2, 9)]
        left = batch(("a", "b"), left_rows)
        right = batch(("b", "c"), right_rows)
        expected = Relation(
            ("a", "b"),
            [tuple(None if v == NULL_ID else TERMS[v] for v in r) for r in left_rows],
        ).natural_join(
            Relation(
                ("b", "c"),
                [tuple(None if v == NULL_ID else TERMS[v] for v in r) for r in right_rows],
            )
        )
        joined = left.natural_join(right)
        assert joined.columns == expected.columns
        assert bag(joined.to_relation()) == bag(expected)

    def test_join_comparisons_counted_like_relation(self):
        left = batch(("a", "b"), [(1, 2), (3, 2)])
        right = batch(("b", "c"), [(2, 7), (2, 9)])
        batch_metrics = ExecutionMetrics()
        left.natural_join(right, batch_metrics)
        row_metrics = ExecutionMetrics()
        left.to_relation().natural_join(right.to_relation(), row_metrics)
        assert batch_metrics.join_comparisons == row_metrics.join_comparisons

    def test_cross_join_when_no_shared_columns(self):
        left = batch(("a",), [(1,), (3,)])
        right = batch(("c",), [(5,), (7,)])
        assert len(left.natural_join(right)) == 4

    def test_union_pads_missing_columns_with_nulls(self):
        left = batch(("a",), [(1,)])
        right = batch(("b",), [(2,)])
        unioned = left.union(right).to_relation()
        expected = Relation(("a",), [(TERMS[1],)]).union(Relation(("b",), [(TERMS[2],)]))
        assert sorted(unioned.columns) == sorted(expected.columns)
        assert bag(unioned.project(sorted(unioned.columns))) == bag(
            expected.project(sorted(expected.columns))
        )

    def test_pad_to_adds_null_columns(self):
        padded = batch(("a",), [(1,), (2,)]).pad_to(["a", "z"])
        assert padded.columns == ("a", "z")
        assert all(row[1] is None for row in padded.to_relation().rows)
        assert list(null_column(3)) == [NULL_ID] * 3


class TestDecodeBoundary:
    def test_ids_beyond_dictionary_rejected(self):
        """An id the dictionary never assigned must raise at the lowering
        boundary — never silently produce a wrong term."""
        rogue = batch(("a",), [(1,), (9999,)])
        with pytest.raises(KeyError, match="unknown term id"):
            rogue.to_relation()

    def test_stored_dictionary_rejects_out_of_range(self, tmp_path):
        """Same contract on a real persisted dataset's dictionary."""
        session = S2RDFSession.from_graph(
            Graph([Triple(IRI("a"), IRI("p"), IRI("b"))]), num_partitions=1
        )
        path = str(tmp_path / "dataset")
        session.save_dataset(path)
        session.close()
        stored = S2RDFSession.open_dataset(path, vectorized_enabled=True)
        scan = stored.layout.catalog.scan_batch("vp_p")
        good = scan.batch
        rogue = ColumnBatch(good.columns, good.ids, good.decode, selection=None)
        assert rogue.to_relation().columns == ("s", "o")  # in-range ids decode
        forged = ColumnBatch(
            good.columns,
            [array("q", [10_000]) for _ in good.columns],
            good.decode,
        )
        with pytest.raises(KeyError):
            forged.to_relation()
        stored.close()


class TestConcatAndPartitioning:
    def test_concat_batches(self):
        left = batch(("a",), [(1,)], selection=[0])
        right = batch(("a",), [(2,), (3,)])
        merged = concat_batches([left, right])
        assert len(merged) == 3
        with pytest.raises(ValueError):
            concat_batches([])
        with pytest.raises(SchemaError):
            concat_batches([left, batch(("z",), [(1,)])])

    def test_even_partitioning_covers_every_row_once(self):
        b = batch(("a",), [(i % 7,) for i in range(10)])
        parts = PartitionedBatch.from_batch(b, 3)
        assert parts.num_partitions == 3
        assert sum(len(p) for p in parts.partitions) == 10
        merged = concat_batches(list(parts.partitions))
        assert bag(merged.to_relation()) == bag(b.to_relation())

    def test_hash_partitioning_agrees_with_row_partitioner(self):
        from repro.engine.runtime.partitioner import key_partition_index

        b = batch(("a", "b"), [(i % 5, (i * 3) % 7) for i in range(20)])
        parts = PartitionedBatch.from_batch(b, 4, keys=["a"])
        assert parts.keys == ("a",)
        for index, part in enumerate(parts.partitions):
            for row in part.to_relation().rows:
                assert key_partition_index((row[0],), 4) == index
