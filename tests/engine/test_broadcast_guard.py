"""Broadcast memory-guard tests: a broadcast join whose *observed* build side
exceeds ``broadcast_memory_limit`` is demoted to a shuffle (in every mode),
counted in the per-query metrics, the session registry and the journal, and
surfaced as a replan event for ``explain_analyze``."""

import pytest

from repro.core.session import S2RDFSession
from repro.rdf.graph import Graph
from repro.rdf.triple import Triple

JOIN_QUERY = "SELECT ?x ?p WHERE { ?x <follows> ?y . ?y <likes> ?p }"
OPTIONAL_QUERY = "SELECT ?x ?p WHERE { ?x <follows> ?y OPTIONAL { ?y <likes> ?p } }"


def graph() -> Graph:
    triples = [Triple.of(f"u{i}", "follows", f"u{(i * 3) % 10}") for i in range(40)]
    triples += [Triple.of(f"u{i}", "likes", f"p{i % 5}") for i in range(0, 40, 2)]
    return Graph(triples, name="guard")


def session_with_limit(limit: int, adaptive: bool = True, **kwargs) -> S2RDFSession:
    # A huge broadcast_threshold makes the planner *prefer* broadcasting, so
    # the memory guard is the only thing standing between an oversized build
    # side and a broadcast.
    return S2RDFSession.from_graph(
        graph(),
        num_partitions=2,
        broadcast_threshold=10**9,
        broadcast_memory_limit=limit,
        adaptive_enabled=adaptive,
        **kwargs,
    )


@pytest.mark.parametrize("adaptive", [True, False])
def test_tiny_limit_demotes_broadcasts_in_every_mode(adaptive):
    with session_with_limit(1, adaptive=adaptive) as guarded:
        tripped = guarded.query(JOIN_QUERY)
    with session_with_limit(10**9, adaptive=adaptive) as unguarded:
        free = unguarded.query(JOIN_QUERY)

    assert tripped.metrics.broadcast_guard_trips > 0
    assert free.metrics.broadcast_guard_trips == 0
    # The demotion changed the executed physical strategy, not the answer.
    assert any("ShuffleHashJoin" in s for s in tripped.executed_join_strategies)
    assert any("BroadcastHashJoin" in s for s in free.executed_join_strategies)
    assert sorted(map(str, tripped.relation.rows)) == sorted(
        map(str, free.relation.rows)
    )
    assert tripped.metrics.broadcast_bytes == 0
    assert tripped.metrics.shuffled_bytes > 0


def test_guard_trips_reach_registry_and_journal():
    with session_with_limit(1) as session:
        session.query(JOIN_QUERY)
        snapshot = session.metrics.snapshot()
        (record,) = session.journal.records()
    assert snapshot["counters"]["s2rdf_broadcast_guard_trips_total"] > 0
    assert record.broadcast_guard_trips > 0


def test_guard_demotion_is_reported_as_a_replan():
    with session_with_limit(1) as session:
        analyzed = session.explain_analyze(JOIN_QUERY)
    assert "broadcast memory guard" in analyzed.text


def test_outer_join_build_side_is_guarded():
    with session_with_limit(1) as session:
        result = session.query(OPTIONAL_QUERY)
    assert result.metrics.broadcast_guard_trips > 0
    assert any("ShuffleHashJoin" in s for s in result.executed_join_strategies)


def test_generous_limit_never_trips():
    with session_with_limit(10**9) as session:
        session.query(JOIN_QUERY)
        session.query(OPTIONAL_QUERY)
        snapshot = session.metrics.snapshot()
    assert snapshot["counters"]["s2rdf_broadcast_guard_trips_total"] == 0
