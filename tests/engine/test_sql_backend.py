"""Unit tests for the sqlite backend (`repro.engine.sql`): statement shapes,
the rdf_* UDF error semantics, executor caching/invalidation and the session
engine knob."""

import sqlite3

import pytest

from repro.core.session import S2RDFSession
from repro.engine.metrics import ExecutionMetrics
from repro.engine.ops import (
    AggregateNode,
    AggregateSpec,
    FilterNode,
    LimitNode,
    OrderByNode,
    SubqueryNode,
)
from repro.engine.plan import PlanExecutor
from repro.engine.sql import SqliteExecutor, register_rdf_functions, to_sqlite_sql
from repro.mappings.extvp import ExtVPLayout
from repro.rdf.graph import Graph
from repro.rdf.terms import IRI, Variable
from repro.rdf.triple import Triple
from repro.sparql.expressions import Comparison, TermExpression, VariableExpression


def bag(relation):
    return sorted(map(repr, relation.rows))


@pytest.fixture(scope="module")
def layout():
    graph = Graph(
        [
            Triple.of("A", "follows", "B"),
            Triple.of("B", "follows", "C"),
            Triple.of("B", "follows", "D"),
            Triple.of("C", "follows", "D"),
            Triple.of("A", "likes", "I1"),
            Triple.of("A", "likes", "I2"),
            Triple.of("C", "likes", "I2"),
        ]
    )
    built = ExtVPLayout(selectivity_threshold=1.0)
    built.build(graph)
    return built


def scan(table: str = "vp_follows") -> SubqueryNode:
    return SubqueryNode(table_name=table, projections=(("s", "x"), ("o", "y")))


class TestLowering:
    def test_scan_with_condition_is_parameterized(self):
        node = SubqueryNode(
            table_name="vp_follows",
            projections=(("s", "x"),),
            conditions=(("o", IRI("D")),),
        )
        sql, params = to_sqlite_sql(node)
        assert '"o" = ?' in sql
        assert params == ("<D>",)  # encoded N3 text, never inlined

    def test_filter_truth_is_error_guarded(self):
        predicate = Comparison(
            "<", VariableExpression(Variable("y")), TermExpression(IRI("C"))
        )
        sql, _ = to_sqlite_sql(FilterNode(child=scan(), expression=predicate))
        assert "COALESCE(rdf_ebv(" in sql  # error -> NULL -> FALSE

    def test_order_is_deferred_to_the_statement_root(self):
        node = LimitNode(
            child=OrderByNode(child=scan(), keys=(("y", False),)), limit=2
        )
        sql, params = to_sqlite_sql(node)
        assert 'ORDER BY ("y" IS NULL) DESC, "y" DESC' in sql
        assert "LIMIT ?" in sql and params[-2:] == (2, 0)

    def test_pending_order_survives_to_root_without_limit(self):
        sql, _ = to_sqlite_sql(OrderByNode(child=scan(), keys=(("x", True),)))
        assert sql.rstrip().endswith('ORDER BY ("x" IS NULL) ASC, "x" ASC')


class TestUdfSemantics:
    @pytest.fixture()
    def connection(self):
        connection = sqlite3.connect(":memory:")
        register_rdf_functions(connection)
        yield connection
        connection.close()

    def one(self, connection, expression, params=()):
        return connection.execute(f"SELECT {expression}", params).fetchone()[0]

    def test_comparison_type_error_is_null(self, connection):
        assert self.one(connection, "rdf_cmp('<', 1, 'text')") is None
        assert self.one(connection, "rdf_cmp('<', 1, 2)") == 1

    def test_null_operands_propagate(self, connection):
        assert self.one(connection, "rdf_cmp('=', NULL, 1)") is None
        assert self.one(connection, "rdf_arith('+', NULL, 1)") is None

    def test_division_by_zero_is_null(self, connection):
        assert self.one(connection, "rdf_arith('/', 1, 0)") is None

    def test_ebv_coalesce_rejects_errors(self, connection):
        assert self.one(connection, "COALESCE(rdf_ebv(rdf_cmp('<', 1, 'x')), 0)") == 0

    def test_regex_flags(self, connection):
        assert self.one(connection, "rdf_regex('Hello', 'hello')") == 0
        assert self.one(connection, "rdf_regex('Hello', 'hello', 'i')") == 1
        assert self.one(connection, "rdf_regex(NULL, 'x')") is None

    def test_empty_group_aggregates(self, connection):
        connection.execute("CREATE TABLE t (v)")
        # sqlite never calls a custom aggregate's finalize over zero rows, so
        # the lowering guards SUM/AVG with COUNT(*) — SPARQL's empty SUM is 0.
        assert self.one(connection, "rdf_sum(v) FROM t") is None  # raw UDF
        node = AggregateNode(
            child=SubqueryNode(table_name="empty", projections=(("s", "x"),)),
            group_keys=(),
            aggregates=(AggregateSpec(function="sum", column="x", alias="total"),),
        )
        sql, _ = to_sqlite_sql(node)
        assert "CASE WHEN COUNT(*) = 0 THEN 0 ELSE" in sql


class TestExecutor:
    def test_matches_native_executor(self, layout):
        plan = scan()
        native = PlanExecutor(layout.catalog).execute(plan, ExecutionMetrics())
        executor = SqliteExecutor(layout.catalog)
        try:
            result = executor.execute(plan, ExecutionMetrics())
            assert result.columns == native.columns
            assert bag(result) == bag(native)
        finally:
            executor.close()

    def test_scan_metrics_and_node_stats(self, layout):
        executor = SqliteExecutor(layout.catalog)
        try:
            plan = scan()
            metrics = ExecutionMetrics()
            result = executor.execute(plan, metrics)
            assert metrics.output_tuples == len(result)
            assert "vp_follows" in metrics.scanned_tables
            stats = executor.last_node_stats[id(plan)]
            assert stats.rows == len(result)
        finally:
            executor.close()

    def test_tables_load_once_until_invalidated(self, layout):
        executor = SqliteExecutor(layout.catalog)
        try:
            executor.execute(scan(), ExecutionMetrics())
            assert "vp_follows" in executor._loaded
            connection = executor._connection
            executor.execute(scan(), ExecutionMetrics())
            assert executor._connection is connection  # cached, not rebuilt
            executor.invalidate()
            assert executor._loaded == {} and executor._connection is None
            executor.execute(scan(), ExecutionMetrics())  # reloads cleanly
            assert "vp_follows" in executor._loaded
        finally:
            executor.close()


class TestSessionKnob:
    def test_engine_validation(self):
        graph = Graph([Triple.of("a", "p", "b")])
        with pytest.raises(ValueError, match="engine"):
            S2RDFSession.from_graph(graph, engine="postgres")

    def test_append_invalidates_sqlite_cache(self, tmp_path):
        saver = S2RDFSession.from_graph(Graph([Triple.of("a", "p", "b")]))
        path = str(tmp_path / "dataset")
        saver.save_dataset(path)
        saver.close()
        session = S2RDFSession.open_dataset(path, engine="sqlite")
        try:
            assert len(session.query("SELECT * WHERE { ?s <p> ?o }")) == 1
            session.append_triples([Triple.of("c", "p", "d")])
            # The appended row must be visible: the sqlite table cache was
            # invalidated by the store refresh, not served stale.
            assert len(session.query("SELECT * WHERE { ?s <p> ?o }")) == 2
        finally:
            session.close()
