"""Unit tests for logical plans, the catalog, metrics and cost models."""

import pytest

from repro.engine.catalog import Catalog, TableNotFoundError
from repro.engine.cluster import (
    CentralizedCostModel,
    ClusterConfig,
    HBaseCostModel,
    MapReduceCostModel,
    SparkCostModel,
)
from repro.engine.metrics import ExecutionMetrics
from repro.engine.plan import (
    DistinctNode,
    EmptyNode,
    FilterNode,
    LeftOuterJoinNode,
    LimitNode,
    NaturalJoinNode,
    OrderByNode,
    PlanExecutor,
    ProjectNode,
    SubqueryNode,
    TableScanNode,
    UnionNode,
    count_joins,
    plan_depth,
)
from repro.engine.relation import Relation
from repro.rdf.terms import IRI, Literal, Variable
from repro.sparql.expressions import Comparison, TermExpression, VariableExpression


@pytest.fixture
def catalog():
    catalog = Catalog()
    catalog.register("follows", Relation(("s", "o"), [(IRI("A"), IRI("B")), (IRI("B"), IRI("C"))]))
    catalog.register("likes", Relation(("s", "o"), [(IRI("A"), IRI("I1")), (IRI("C"), IRI("I2"))]))
    catalog.register(
        "ages", Relation(("s", "o"), [(IRI("A"), Literal("30")), (IRI("B"), Literal("10"))])
    )
    return catalog


@pytest.fixture
def executor(catalog):
    return PlanExecutor(catalog)


class TestCatalog:
    def test_register_and_lookup(self, catalog):
        assert "follows" in catalog
        assert len(catalog.table("follows")) == 2

    def test_missing_table(self, catalog):
        with pytest.raises(TableNotFoundError):
            catalog.table("nope")

    def test_statistics(self, catalog):
        statistics = catalog.statistics("follows")
        assert statistics.row_count == 2
        assert statistics.distinct_subjects == 2

    def test_statistics_only_registration(self, catalog):
        catalog.register_statistics_only("ghost", 0, 0.0)
        assert "ghost" not in catalog
        assert catalog.statistics("ghost").is_empty

    def test_totals(self, catalog):
        assert catalog.total_tuples() == 6
        assert catalog.table_count() == 3

    def test_drop(self, catalog):
        catalog.drop("ages")
        assert "ages" not in catalog


class TestPlanExecution:
    def test_table_scan(self, executor):
        result = executor.execute(TableScanNode("follows", ("s", "o")))
        assert len(result) == 2

    def test_subquery_projection_and_rename(self, executor):
        node = SubqueryNode("follows", projections=(("s", "x"), ("o", "y")))
        result = executor.execute(node)
        assert result.columns == ("x", "y")

    def test_subquery_condition(self, executor):
        node = SubqueryNode("follows", projections=(("o", "y"),), conditions=(("s", IRI("A")),))
        result = executor.execute(node)
        assert result.rows == [(IRI("B"),)]

    def test_natural_join_node(self, executor):
        left = SubqueryNode("follows", projections=(("s", "x"), ("o", "y")))
        right = SubqueryNode("likes", projections=(("s", "y"), ("o", "w")))
        result = executor.execute(NaturalJoinNode(left, right))
        assert set(result.columns) == {"x", "y", "w"}

    def test_left_outer_join_node(self, executor):
        left = SubqueryNode("follows", projections=(("s", "x"), ("o", "y")))
        right = SubqueryNode("ages", projections=(("s", "y"), ("o", "age")))
        result = executor.execute(LeftOuterJoinNode(left, right))
        assert len(result) == 2
        ages = dict(zip(result.column_values("y"), result.column_values("age")))
        assert ages[IRI("C")] is None

    def test_left_outer_join_with_filter_expression(self, executor):
        left = SubqueryNode("follows", projections=(("s", "x"), ("o", "y")))
        right = SubqueryNode("ages", projections=(("s", "y"), ("o", "age")))
        expression = Comparison(">", VariableExpression(Variable("age")), TermExpression(Literal("20")))
        result = executor.execute(LeftOuterJoinNode(left, right, expression))
        ages = dict(zip(result.column_values("y"), result.column_values("age")))
        # B's age (10) fails the filter so the optional part is dropped but the row survives?
        # No: per SPARQL semantics the row is removed because the optional matched and the filter failed.
        assert IRI("C") in ages  # unmatched optional stays
        assert all(a is None or a == Literal("30") for a in ages.values())

    def test_filter_node(self, executor):
        scan = SubqueryNode("ages", projections=(("s", "x"), ("o", "age")))
        expression = Comparison(">", VariableExpression(Variable("age")), TermExpression(Literal("20")))
        result = executor.execute(FilterNode(scan, expression))
        assert len(result) == 1

    def test_union_distinct_order_limit(self, executor):
        scan = SubqueryNode("follows", projections=(("s", "x"),))
        union = UnionNode(scan, scan)
        distinct = DistinctNode(union)
        ordered = OrderByNode(distinct, (("x", True),))
        limited = LimitNode(ordered, 1)
        assert len(executor.execute(union)) == 4
        assert len(executor.execute(distinct)) == 2
        assert executor.execute(limited).rows == [(IRI("A"),)]

    def test_project_node_pads_missing_columns(self, executor):
        scan = SubqueryNode("follows", projections=(("s", "x"),))
        result = executor.execute(ProjectNode(scan, ("x", "missing")))
        assert result.columns == ("x", "missing")
        assert all(row[1] is None for row in result.rows)

    def test_empty_node(self, executor):
        result = executor.execute(EmptyNode(("a", "b")))
        assert len(result) == 0
        assert result.columns == ("a", "b")

    def test_metrics_recorded(self, executor):
        metrics = ExecutionMetrics()
        left = SubqueryNode("follows", projections=(("s", "x"), ("o", "y")))
        right = SubqueryNode("likes", projections=(("s", "y"), ("o", "w")))
        executor.execute(NaturalJoinNode(left, right), metrics)
        assert metrics.table_scans == 2
        assert metrics.joins == 1
        assert metrics.input_tuples == 4

    def test_plan_helpers(self):
        left = SubqueryNode("follows", projections=(("s", "x"),))
        right = SubqueryNode("likes", projections=(("s", "x"),))
        plan = NaturalJoinNode(left, right)
        assert count_joins(plan) == 1
        assert plan_depth(plan) == 2

    def test_to_sql_contains_tables_and_aliases(self):
        node = SubqueryNode("vp_likes", projections=(("s", "x"), ("o", "w")), conditions=(("o", IRI("I2")),))
        sql = node.to_sql()
        assert "FROM vp_likes" in sql
        assert "s AS x" in sql
        assert "WHERE" in sql


class TestMetrics:
    def test_merge(self):
        first = ExecutionMetrics(input_tuples=5, joins=1)
        second = ExecutionMetrics(input_tuples=3, joins=2)
        first.merge(second)
        assert first.input_tuples == 8
        assert first.joins == 3

    def test_scaled(self):
        metrics = ExecutionMetrics(input_tuples=10, shuffled_tuples=4, join_comparisons=2, joins=3, stages=5)
        scaled = metrics.scaled(10.0)
        assert scaled.input_tuples == 100
        assert scaled.shuffled_tuples == 40
        assert scaled.joins == 3  # structural counters unchanged
        assert scaled.stages == 5

    def test_scaled_contract_regression(self):
        # The scaling contract: data-proportional counters (incl. the
        # per-table map) scale; structural counters and observed wall-clock
        # timings (critical_path_ms) are copied unchanged.
        metrics = ExecutionMetrics(
            input_tuples=10,
            critical_path_ms=12.5,
            aqe_replans=2,
            aqe_skew_splits=3,
            parallel_tasks=8,
        )
        metrics.scanned_tables = {"vp_follows": 10, "vp_likes": 4}
        scaled = metrics.scaled(3.0)
        assert scaled.critical_path_ms == 12.5  # measured time, never scaled
        assert scaled.aqe_replans == 2
        assert scaled.aqe_skew_splits == 3
        assert scaled.parallel_tasks == 8
        assert scaled.scanned_tables == {"vp_follows": 30, "vp_likes": 12}
        # The original is untouched (scaled() returns a copy).
        assert metrics.scanned_tables == {"vp_follows": 10, "vp_likes": 4}

    def test_as_dict_keys(self):
        keys = set(ExecutionMetrics().as_dict())
        assert {"input_tuples", "shuffled_tuples", "join_comparisons", "output_tuples"} <= keys

    def test_as_dict_includes_scanned_tables_and_aqe_counters(self):
        metrics = ExecutionMetrics(aqe_replans=1, aqe_skew_splits=4)
        metrics.record_scan("vp_follows", 7)
        report = metrics.as_dict()
        assert report["scanned_tables"] == {"vp_follows": 7}
        assert report["aqe_replans"] == 1
        assert report["aqe_skew_splits"] == 4
        # The report owns its map: mutating it must not leak back.
        report["scanned_tables"]["vp_follows"] = 0
        assert metrics.scanned_tables == {"vp_follows": 7}

    def test_merge_and_copy_cover_aqe_counters(self):
        first = ExecutionMetrics(aqe_replans=1, aqe_skew_splits=2)
        second = ExecutionMetrics(aqe_replans=2, aqe_skew_splits=5)
        first.merge(second)
        assert first.aqe_replans == 3
        assert first.aqe_skew_splits == 7
        clone = first.copy()
        assert clone.aqe_replans == 3
        assert clone.aqe_skew_splits == 7


class TestCostModels:
    def test_spark_cost_monotone_in_input(self):
        model = SparkCostModel()
        small = ExecutionMetrics(input_tuples=1000, stages=2)
        large = ExecutionMetrics(input_tuples=100_000_000, stages=2)
        assert model.runtime_ms(large) > model.runtime_ms(small)

    def test_spark_latency_floor(self):
        model = SparkCostModel()
        assert model.runtime_ms(ExecutionMetrics()) >= model.query_overhead_ms

    def test_mapreduce_job_overhead_dominates(self):
        model = MapReduceCostModel()
        metrics = ExecutionMetrics(input_tuples=10)
        assert model.runtime_ms(metrics, jobs=3) >= 3 * model.job_overhead_ms

    def test_centralized_timeout(self):
        model = CentralizedCostModel(timeout_ms=1000.0)
        metrics = ExecutionMetrics(output_tuples=10_000_000_000)
        assert model.runtime_ms(metrics) == float("inf")

    def test_centralized_warm_cache_faster(self):
        model = CentralizedCostModel()
        metrics = ExecutionMetrics(input_tuples=1_000_000)
        assert model.runtime_ms(metrics, warm=True) < model.runtime_ms(metrics)

    def test_hbase_adaptive_switch(self):
        model = HBaseCostModel(centralized_threshold_tuples=100)
        selective = ExecutionMetrics(input_tuples=50)
        unselective = ExecutionMetrics(input_tuples=10_000)
        assert model.is_centralized(selective)
        assert not model.is_centralized(unselective)
        assert model.runtime_ms(unselective) > model.runtime_ms(selective)

    def test_cluster_config_cores(self):
        assert ClusterConfig(worker_nodes=9, cores_per_node=6).total_cores == 54
