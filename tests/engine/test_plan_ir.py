"""Unit tests for the plan IR (`repro.engine.ops`): immutable nodes,
generic traversal, the visitor protocol and the capability flags engines
branch on instead of node classes."""

import re
from pathlib import Path

import pytest

from repro.engine.ops import (
    AggregateNode,
    AggregateSpec,
    DistinctNode,
    EmptyNode,
    FilterNode,
    LeftOuterJoinNode,
    LimitNode,
    NaturalJoinNode,
    Operation,
    OperationVisitor,
    OrderByNode,
    ProjectNode,
    SubqueryNode,
    TableScanNode,
    UnionNode,
    count_joins,
    plan_depth,
)
from repro.sparql.expressions import Comparison, TermExpression, VariableExpression
from repro.rdf.terms import IRI, Variable


def scan(table: str, *aliases: str) -> SubqueryNode:
    columns = ("s", "o")[: len(aliases)]
    return SubqueryNode(table_name=table, projections=tuple(zip(columns, aliases)))


@pytest.fixture()
def tree():
    """join(scan(a), filter(scan(b))) — the reference tree for traversal."""
    left = scan("vp_p", "x", "y")
    inner = scan("vp_q", "y", "z")
    predicate = Comparison(
        "=", VariableExpression(Variable("z")), TermExpression(IRI("c"))
    )
    right = FilterNode(child=inner, expression=predicate)
    return NaturalJoinNode(left=left, right=right), left, inner, right


class TestTraversal:
    def test_walk_is_preorder(self, tree):
        root, left, inner, right = tree
        assert list(root.walk()) == [root, left, right, inner]

    def test_output_columns_dedup_shared(self, tree):
        root, *_ = tree
        assert root.output_columns() == ("x", "y", "z")
        assert root.shared_columns() == ("y",)

    def test_transform_preserves_untouched_identity(self, tree):
        root, left, *_ = tree
        rebuilt = root.transform(lambda node: node)
        # Nothing changed, so the *same* objects come back — executors key
        # annotations on id(node) and rely on this.
        assert rebuilt is root

    def test_transform_rebuilds_path_to_changed_node(self, tree):
        root, left, inner, right = tree
        replacement = scan("extvp_ss_q__p", "y", "z")

        def swap(node):
            return replacement if node is inner else node

        rebuilt = root.transform(swap)
        assert rebuilt is not root
        assert rebuilt.left is left  # untouched branch keeps identity
        assert rebuilt.right is not right
        assert rebuilt.right.child is replacement
        # The original tree is untouched (nodes are immutable).
        assert root.right.child is inner

    def test_nodes_are_frozen(self, tree):
        root, *_ = tree
        with pytest.raises(AttributeError):
            root.left = root.right

    def test_measures(self, tree):
        root, *_ = tree
        assert plan_depth(root) == 3
        assert count_joins(root) == 1
        assert count_joins(UnionNode(left=root, right=root)) == 2


class TestCapabilityFlags:
    def test_joins(self, tree):
        root, *_ = tree
        assert root.is_join and not root.is_outer_join and not root.is_scan
        outer = LeftOuterJoinNode(left=root.left, right=root.right)
        assert outer.is_join and outer.is_outer_join

    def test_scans(self):
        assert scan("vp_p", "x", "y").is_scan
        assert TableScanNode(table_name="triples", columns=("s", "p", "o")).is_scan
        assert not EmptyNode(columns=("x",)).is_scan

    def test_plain_operators_carry_no_flags(self, tree):
        root, *_ = tree
        for node in (
            DistinctNode(child=root),
            ProjectNode(child=root, columns=("x",)),
            OrderByNode(child=root, keys=(("x", True),)),
            LimitNode(child=root, limit=3),
            UnionNode(left=root, right=root),
        ):
            assert not node.is_join and not node.is_outer_join and not node.is_scan

    def test_no_isinstance_ladders_outside_the_ir_module(self):
        """Engines must branch on capability flags / visitors, never on node
        classes: no `isinstance(..., XxxNode)` outside repro/engine/ops.py."""
        node_names = (
            "TableScanNode|SubqueryNode|EmptyNode|NaturalJoinNode|LeftOuterJoinNode"
            "|UnionNode|FilterNode|ProjectNode|DistinctNode|OrderByNode|LimitNode"
            "|AggregateNode|PlanNode|Operation"
        )
        pattern = re.compile(r"isinstance\([^)]*\b(?:" + node_names + r")\b")
        src = Path(__file__).resolve().parents[2] / "src" / "repro"
        offenders = [
            f"{path}:{number}: {line.strip()}"
            for path in sorted(src.rglob("*.py"))
            if path.name != "ops.py"
            for number, line in enumerate(path.read_text().splitlines(), 1)
            if pattern.search(line)
        ]
        assert offenders == []


class TestVisitorProtocol:
    def test_dispatch_and_context_threading(self, tree):
        root, *_ = tree

        class CountingVisitor(OperationVisitor):
            def visit_natural_join(self, node, depth):
                return 1 + self.visit(node.left, depth + 1) + self.visit(node.right, depth + 1)

            def visit_filter(self, node, depth):
                return self.visit(node.child, depth + 1)

            def visit_subquery(self, node, depth):
                assert depth > 0
                return 0

        assert CountingVisitor().visit(root, 0) == 1

    def test_unhandled_node_raises(self, tree):
        root, *_ = tree
        with pytest.raises(TypeError, match="cannot handle NaturalJoinNode"):
            OperationVisitor().visit(root)

    def test_spark_sql_rendering_is_a_visitor(self, tree):
        root, *_ = tree
        text = root.to_sql()
        assert "JOIN" in text and "vp_p" in text and "vp_q" in text


class TestAggregateSpec:
    def test_validation(self):
        with pytest.raises(ValueError, match="unknown aggregate function"):
            AggregateSpec(function="median", column="x", alias="m")
        with pytest.raises(ValueError, match=r"sum\(\*\) is not defined"):
            AggregateSpec(function="sum", column=None, alias="s")

    def test_describe(self):
        spec = AggregateSpec(function="count", column="x", alias="n", distinct=True)
        assert spec.describe() == "count(DISTINCT ?x) AS ?n"
        star = AggregateSpec(function="count", column=None, alias="n")
        assert star.describe() == "count(*) AS ?n"

    def test_output_columns(self, tree):
        root, *_ = tree
        node = AggregateNode(
            child=root,
            group_keys=("x",),
            aggregates=(AggregateSpec(function="count", column="y", alias="n"),),
        )
        assert node.output_columns() == ("x", "n")
