"""Store health inspector tests: per-table base/delta accounting, write
amplification, compaction recommendations, journal-derived pruning stats and
the ``python -m repro.tools.inspect`` CLI."""

import json

import pytest

from repro.core.session import S2RDFSession
from repro.rdf.graph import Graph
from repro.rdf.triple import Triple
from repro.store.format import read_manifest
from repro.tools.inspect import (
    DEFAULT_DELTA_SEGMENT_THRESHOLD,
    StoreHealthReport,
    inspect_dataset,
    main,
)


def build_session() -> S2RDFSession:
    triples = [Triple.of(f"u{i}", "follows", f"u{(i * 3) % 8}") for i in range(24)]
    triples += [Triple.of(f"u{i}", "likes", f"p{i % 3}") for i in range(0, 24, 2)]
    return S2RDFSession.from_graph(Graph(triples, name="health"), num_partitions=2)


@pytest.fixture()
def dataset(tmp_path):
    """A persisted dataset with one append epoch and a few journaled queries."""
    path = str(tmp_path / "ds")
    with build_session() as session:
        session.save_dataset(path)
        session.query("SELECT ?f WHERE { <u1> <follows> ?f }")
        session.append_triples([Triple.of(f"u{30 + i}", "follows", "u1") for i in range(4)])
        session.query("SELECT ?f WHERE { <u2> <follows> ?f }")
        session.query("SELECT ?x ?p WHERE { ?x <follows> ?y . ?y <likes> ?p }")
    return path


def test_report_reflects_manifest_and_journal(dataset):
    report = inspect_dataset(dataset)
    manifest = read_manifest(dataset)
    assert isinstance(report, StoreHealthReport)
    assert report.append_epoch == 1
    assert report.format_version == manifest.format_version
    assert report.table_count == len(manifest.tables)
    assert report.statistics_only_count == len(manifest.statistics_only)
    assert report.dictionary_terms == manifest.dictionary_size
    assert report.dictionary_bytes > 0
    assert report.total_bytes == report.base_bytes + report.delta_bytes
    assert report.delta_bytes > 0  # the append left unfolded deltas
    assert report.triples == manifest.tables["triples"].row_count
    assert report.bytes_per_triple == pytest.approx(report.total_bytes / report.triples)
    # Three queries were journaled; they scanned stored segments.
    assert report.journal_records == 3
    assert report.journal_files >= 1
    assert report.observed_prune_fraction is None or 0.0 <= report.observed_prune_fraction <= 1.0


def test_per_table_health_accounts_base_and_delta(dataset):
    report = inspect_dataset(dataset)
    by_name = {t.name: t for t in report.tables}
    follows = by_name["vp_follows"]  # the appended predicate
    assert follows.delta_segments > 0
    assert follows.delta_rows > 0
    assert follows.rows == follows.base_rows + follows.delta_rows
    assert follows.total_bytes == follows.base_bytes + follows.delta_bytes
    assert follows.zone_width_fraction is None or 0.0 <= follows.zone_width_fraction <= 1.0
    likes = by_name["vp_likes"]  # untouched by the append
    assert likes.delta_segments == 0
    assert likes.delta_bytes == 0


def test_compaction_recommendation_appears_and_clears(dataset):
    report = inspect_dataset(dataset, delta_segment_threshold=1)
    assert "vp_follows" in report.compaction_candidates
    candidate = next(t for t in report.tables if t.name == "vp_follows")
    assert candidate.needs_compaction
    assert "delta segment" in candidate.compaction_reason

    with S2RDFSession.open_dataset(dataset) as session:
        session.compact(compaction_threshold=1)
    after = inspect_dataset(dataset, delta_segment_threshold=1)
    assert after.compaction_candidates == []
    assert after.delta_bytes == 0
    assert after.append_epoch >= 1  # compaction does not lose the epoch


def test_fresh_dataset_needs_no_compaction(tmp_path):
    path = str(tmp_path / "fresh")
    with build_session() as session:
        session.save_dataset(path)
    report = inspect_dataset(path)
    assert report.append_epoch == 0
    assert report.compaction_candidates == []
    assert report.delta_bytes == 0
    assert report.journal_records == 0
    assert report.observed_prune_fraction is None
    assert "query journal: empty" in report.render_text()


def test_as_dict_is_json_serializable(dataset):
    data = inspect_dataset(dataset).as_dict()
    encoded = json.dumps(data)
    decoded = json.loads(encoded)
    assert decoded["append_epoch"] == 1
    assert decoded["tables"]
    assert {"name", "rows", "delta_segments", "needs_compaction"} <= set(
        decoded["tables"][0]
    )


def test_render_text_mentions_the_headline_numbers(dataset):
    text = inspect_dataset(dataset).render_text(top_tables=3)
    assert "manifest epoch 1" in text
    assert "write amplification" in text
    assert "Largest tables (top 3" in text
    assert "Compaction" in text


def test_cli_text_and_json_modes(dataset, capsys):
    assert main([dataset]) == 0
    assert "Store health" in capsys.readouterr().out
    assert main([dataset, "--json", "--delta-threshold", "1"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["append_epoch"] == 1
    assert "vp_follows" in payload["compaction_candidates"]


def test_default_threshold_matches_module_constant():
    assert DEFAULT_DELTA_SEGMENT_THRESHOLD == 2
