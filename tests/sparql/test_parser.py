"""Unit tests for the SPARQL tokenizer and parser."""

import pytest

from repro.rdf.namespaces import WATDIV_NAMESPACES
from repro.rdf.terms import IRI, Literal, Variable
from repro.sparql.algebra import BGP, Filter, LeftJoin, Union
from repro.sparql.parser import SparqlParseError, parse_query
from repro.sparql.tokenizer import TokenizeError, tokenize


class TestTokenizer:
    def test_basic_tokens(self):
        tokens = tokenize("SELECT ?x WHERE { ?x <p> ?y }")
        kinds = [t.kind for t in tokens]
        assert kinds == ["KEYWORD", "VAR", "KEYWORD", "LBRACE", "VAR", "IRI", "VAR", "RBRACE"]

    def test_keywords_lowercased(self):
        tokens = tokenize("SELECT")
        assert tokens[0].value == "select"

    def test_prefixed_name(self):
        tokens = tokenize("wsdbm:User0")
        assert tokens[0].kind == "PNAME"

    def test_comments_skipped(self):
        tokens = tokenize("?x # comment here\n?y")
        assert [t.value for t in tokens] == ["?x", "?y"]

    def test_string_with_datatype(self):
        tokens = tokenize('"5"^^<http://www.w3.org/2001/XMLSchema#integer>')
        assert tokens[0].kind == "STRING"

    def test_comparison_operators(self):
        kinds = [t.kind for t in tokenize("?x >= 5 && ?y != 3")]
        assert "GE" in kinds and "ANDAND" in kinds and "NEQ" in kinds

    def test_unexpected_character(self):
        with pytest.raises(TokenizeError):
            tokenize("SELECT ?x WHERE § { }")


class TestBasicParsing:
    def test_select_star_single_pattern(self):
        query = parse_query("SELECT * WHERE { ?s ?p ?o }")
        assert isinstance(query.pattern, BGP)
        assert len(query.pattern) == 1
        assert query.select_variables == ()

    def test_select_specific_variables(self):
        query = parse_query("SELECT ?s ?o WHERE { ?s <p> ?o }")
        assert [v.name for v in query.select_variables] == ["s", "o"]

    def test_multiple_patterns(self, query_q1):
        query = parse_query(query_q1)
        assert len(query.pattern) == 4

    def test_prefixed_names_expanded(self):
        query = parse_query("SELECT * WHERE { ?x wsdbm:likes wsdbm:Product0 }")
        pattern = query.pattern.patterns[0]
        assert pattern.predicate == IRI(WATDIV_NAMESPACES["wsdbm"] + "likes")
        assert pattern.object == IRI(WATDIV_NAMESPACES["wsdbm"] + "Product0")

    def test_explicit_prefix_declaration(self):
        query = parse_query(
            "PREFIX ex: <http://example.org/> SELECT * WHERE { ?x ex:knows ?y }"
        )
        assert query.pattern.patterns[0].predicate == IRI("http://example.org/knows")

    def test_a_keyword_is_rdf_type(self):
        query = parse_query("SELECT * WHERE { ?x a wsdbm:Role2 }")
        assert query.pattern.patterns[0].predicate == IRI(WATDIV_NAMESPACES["rdf"] + "type")

    def test_predicate_object_list(self):
        query = parse_query("SELECT * WHERE { ?x <p> ?a ; <q> ?b , ?c . }")
        patterns = query.pattern.patterns
        assert len(patterns) == 3
        assert all(p.subject == Variable("x") for p in patterns)

    def test_numeric_literal_object(self):
        query = parse_query("SELECT * WHERE { ?x <age> 42 }")
        assert isinstance(query.pattern.patterns[0].object, Literal)

    def test_string_literal_object(self):
        query = parse_query('SELECT * WHERE { ?x <name> "Ada" }')
        assert query.pattern.patterns[0].object == Literal("Ada")

    def test_undeclared_prefix_raises(self):
        with pytest.raises(SparqlParseError):
            parse_query("SELECT * WHERE { ?x nope:p ?y }")

    def test_non_select_rejected(self):
        with pytest.raises(SparqlParseError):
            parse_query("ASK { ?s ?p ?o }")

    def test_missing_brace_rejected(self):
        with pytest.raises(SparqlParseError):
            parse_query("SELECT * WHERE { ?s ?p ?o ")

    def test_empty_select_rejected(self):
        with pytest.raises(SparqlParseError):
            parse_query("SELECT WHERE { ?s ?p ?o }")

    def test_query_text_preserved(self, query_q1):
        assert parse_query(query_q1).text == query_q1


class TestAggregates:
    def test_grouped_count(self):
        query = parse_query(
            "SELECT ?x (COUNT(?y) AS ?n) WHERE { ?x <p> ?y } GROUP BY ?x"
        )
        assert query.group_by == (Variable("x"),)
        binding = query.aggregates[0]
        assert binding.function == "count"
        assert binding.variable == Variable("y")
        assert binding.alias == Variable("n")
        assert not binding.distinct

    def test_count_star_and_distinct(self):
        query = parse_query(
            "SELECT (COUNT(*) AS ?all) (COUNT(DISTINCT ?y) AS ?uniq) WHERE { ?x <p> ?y }"
        )
        star, uniq = query.aggregates
        assert star.variable is None and not star.distinct
        assert uniq.variable == Variable("y") and uniq.distinct
        assert query.group_by == ()  # implicit single group

    def test_every_function_parses(self):
        for function in ("SUM", "AVG", "MIN", "MAX"):
            query = parse_query(
                f"SELECT ({function}(?y) AS ?a) WHERE {{ ?x <p> ?y }}"
            )
            assert query.aggregates[0].function == function.lower()

    def test_ungrouped_bare_variable_rejected(self):
        with pytest.raises(SparqlParseError, match="GROUP BY"):
            parse_query("SELECT ?x (COUNT(?y) AS ?n) WHERE { ?x <p> ?y }")

    def test_star_with_aggregates_rejected(self):
        with pytest.raises(SparqlParseError, match=r"SELECT \*"):
            parse_query("SELECT * WHERE { ?x <p> ?y } GROUP BY ?x")

    def test_star_argument_only_for_count(self):
        with pytest.raises(SparqlParseError, match="COUNT"):
            parse_query("SELECT (SUM(*) AS ?s) WHERE { ?x <p> ?y }")


class TestErrorPositions:
    """Parse errors carry the 1-based source position and offending token."""

    def test_offending_token_and_position(self):
        text = "SELECT * WHERE { ?s ?p ?o } BOGUS"
        with pytest.raises(SparqlParseError) as excinfo:
            parse_query(text)
        error = excinfo.value
        assert error.token == "BOGUS"
        assert error.line == 1
        assert error.column == text.index("BOGUS") + 1

    def test_multiline_position(self):
        text = "SELECT *\nWHERE {\n  ?s ?p ?o .\n  OPTIONAL ?x\n}"
        with pytest.raises(SparqlParseError) as excinfo:
            parse_query(text)
        error = excinfo.value
        assert error.line == 4
        assert error.column == text.splitlines()[3].index("?x") + 1
        assert error.token == "?x"

    def test_message_carries_position_suffix(self):
        with pytest.raises(SparqlParseError) as excinfo:
            parse_query("SELECT * WHERE { ?s ?p ?o } BOGUS")
        assert str(excinfo.value).endswith("(line 1, column 29)")

    def test_end_of_input_has_position_but_no_token(self):
        text = "SELECT * WHERE { ?s ?p ?o "
        with pytest.raises(SparqlParseError) as excinfo:
            parse_query(text)
        error = excinfo.value
        assert error.token is None
        assert error.line == 1
        assert error.column == len(text) + 1

    def test_tokenizer_error_is_positioned(self):
        text = "SELECT *\nWHERE { ^ }"
        with pytest.raises(SparqlParseError) as excinfo:
            parse_query(text)
        error = excinfo.value
        assert error.line == 2
        assert error.column == text.splitlines()[1].index("^") + 1

    def test_grouping_violation_is_positioned(self):
        with pytest.raises(SparqlParseError) as excinfo:
            parse_query("SELECT ?x (COUNT(?y) AS ?c) WHERE { ?x ?p ?y }")
        error = excinfo.value
        assert "GROUP BY" in str(error)
        assert error.line is not None and error.column is not None


class TestSolutionModifiers:
    def test_distinct(self):
        assert parse_query("SELECT DISTINCT ?x WHERE { ?x ?p ?o }").distinct

    def test_limit_and_offset(self):
        query = parse_query("SELECT ?x WHERE { ?x ?p ?o } LIMIT 10 OFFSET 5")
        assert query.limit == 10
        assert query.offset == 5

    def test_order_by_variable(self):
        query = parse_query("SELECT ?x WHERE { ?x ?p ?o } ORDER BY ?x")
        assert len(query.order_by) == 1
        assert query.order_by[0].ascending

    def test_order_by_desc(self):
        query = parse_query("SELECT ?x WHERE { ?x ?p ?o } ORDER BY DESC(?x)")
        assert not query.order_by[0].ascending


class TestComplexPatterns:
    def test_filter(self):
        query = parse_query("SELECT * WHERE { ?x <age> ?a . FILTER(?a > 18) }")
        assert isinstance(query.pattern, Filter)

    def test_optional(self):
        query = parse_query("SELECT * WHERE { ?x <p> ?y . OPTIONAL { ?y <q> ?z } }")
        assert isinstance(query.pattern, LeftJoin)

    def test_union(self):
        query = parse_query("SELECT * WHERE { { ?x <p> ?y } UNION { ?x <q> ?y } }")
        assert isinstance(query.pattern, Union)

    def test_filter_with_boolean_connectives(self):
        query = parse_query("SELECT * WHERE { ?x <age> ?a . FILTER(?a > 18 && ?a < 65) }")
        assert isinstance(query.pattern, Filter)

    def test_nested_group(self):
        query = parse_query("SELECT * WHERE { { ?x <p> ?y . ?y <q> ?z } }")
        assert len(query.pattern.patterns) == 2

    def test_variables_collected(self, query_q1):
        names = {v.name for v in parse_query(query_q1).variables()}
        assert names == {"x", "y", "z", "w"}


class TestWorkloadQueriesParse:
    def test_all_basic_templates_parse(self, small_dataset):
        from repro.watdiv.basic_queries import BASIC_TEMPLATES
        from repro.watdiv.template import instantiate_template

        for template in BASIC_TEMPLATES:
            query = parse_query(instantiate_template(template, small_dataset))
            assert len(query.pattern.patterns) >= 2

    def test_all_selectivity_templates_parse(self, small_dataset):
        from repro.watdiv.selectivity_queries import SELECTIVITY_TEMPLATES
        from repro.watdiv.template import instantiate_template

        for template in SELECTIVITY_TEMPLATES:
            query = parse_query(instantiate_template(template, small_dataset))
            assert len(query.pattern.patterns) >= 2

    def test_all_incremental_templates_parse(self, small_dataset):
        from repro.watdiv.incremental_queries import INCREMENTAL_TEMPLATES
        from repro.watdiv.template import instantiate_template

        for template in INCREMENTAL_TEMPLATES:
            query = parse_query(instantiate_template(template, small_dataset))
            expected = int(template.name.rsplit("-", 1)[1])
            assert len(query.pattern.patterns) == expected
