"""Unit tests for the SPARQL algebra, expressions and shape analysis."""

import pytest

from repro.rdf.terms import IRI, Literal, Variable
from repro.sparql.algebra import BGP, TriplePattern, collect_bgps, collect_triple_patterns
from repro.sparql.expressions import (
    And,
    Arithmetic,
    Bound,
    Comparison,
    Not,
    Or,
    TermExpression,
    VariableExpression,
)
from repro.sparql.parser import parse_query
from repro.sparql.shapes import CorrelationType, QueryShape, analyze_bgp, classify_shape, diameter, find_correlations


def tp(s, p, o):
    def term(x):
        return Variable(x[1:]) if x.startswith("?") else IRI(x)

    return TriplePattern(term(s), term(p), term(o))


class TestTriplePattern:
    def test_variables(self):
        pattern = tp("?x", "likes", "?y")
        assert pattern.variables() == {Variable("x"), Variable("y")}

    def test_bound_count(self):
        assert tp("?x", "likes", "?y").bound_count() == 1
        assert tp("A", "likes", "?y").bound_count() == 2
        assert tp("A", "likes", "B").bound_count() == 3

    def test_has_bound_predicate(self):
        assert tp("?x", "likes", "?y").has_bound_predicate
        assert not tp("?x", "?p", "?y").has_bound_predicate


class TestExpressions:
    def test_comparison_evaluation(self):
        expression = Comparison(">", VariableExpression(Variable("a")), TermExpression(Literal("5")))
        assert expression.evaluate_truth({"a": Literal("10")})
        assert not expression.evaluate_truth({"a": Literal("3")})

    def test_unbound_variable_is_error_false(self):
        expression = Comparison("=", VariableExpression(Variable("a")), TermExpression(Literal("5")))
        assert expression.evaluate_truth({}) is False

    def test_and_or_not(self):
        a_positive = Comparison(">", VariableExpression(Variable("a")), TermExpression(Literal("0")))
        a_small = Comparison("<", VariableExpression(Variable("a")), TermExpression(Literal("10")))
        mapping = {"a": Literal("5")}
        assert And(a_positive, a_small).evaluate_truth(mapping)
        assert Or(Not(a_positive), a_small).evaluate_truth(mapping)
        assert not Not(a_positive).evaluate_truth(mapping)

    def test_arithmetic(self):
        expression = Comparison(
            "=",
            Arithmetic("+", VariableExpression(Variable("a")), TermExpression(Literal("2"))),
            TermExpression(Literal("7")),
        )
        assert expression.evaluate_truth({"a": Literal("5")})

    def test_bound(self):
        assert Bound(Variable("x")).evaluate_truth({"x": IRI("a")})
        assert not Bound(Variable("x")).evaluate_truth({})

    def test_invalid_operator_rejected(self):
        with pytest.raises(ValueError):
            Comparison("~", VariableExpression(Variable("a")), TermExpression(Literal("1")))

    def test_to_sql_rendering(self):
        expression = Comparison("!=", VariableExpression(Variable("a")), TermExpression(Literal("x")))
        assert expression.to_sql() == "a <> 'x'"

    def test_iri_comparison(self):
        expression = Comparison("=", VariableExpression(Variable("a")), TermExpression(IRI("urn:x")))
        assert expression.evaluate_truth({"a": IRI("urn:x")})


class TestCollectHelpers:
    def test_collect_bgps_and_patterns(self):
        query = parse_query("SELECT * WHERE { ?x <p> ?y . OPTIONAL { ?y <q> ?z } }")
        bgps = collect_bgps(query.pattern)
        assert len(bgps) == 2
        assert len(collect_triple_patterns(query.pattern)) == 2


class TestCorrelations:
    def test_ss_correlation(self):
        bgp = BGP([tp("?x", "likes", "?y"), tp("?x", "follows", "?z")])
        kinds = {c.kind for c in find_correlations(bgp)}
        assert kinds == {CorrelationType.SUBJECT_SUBJECT}

    def test_os_and_so_correlation(self):
        bgp = BGP([tp("?x", "follows", "?y"), tp("?y", "likes", "?z")])
        kinds = {c.kind for c in find_correlations(bgp)}
        assert CorrelationType.OBJECT_SUBJECT in kinds
        assert CorrelationType.SUBJECT_OBJECT in kinds

    def test_oo_correlation(self):
        bgp = BGP([tp("?x", "follows", "?y"), tp("?z", "follows", "?y")])
        kinds = {c.kind for c in find_correlations(bgp)}
        assert CorrelationType.OBJECT_OBJECT in kinds


class TestShapes:
    def test_star_shape(self):
        bgp = BGP([tp("?x", "a", "?y1"), tp("?x", "b", "?y2"), tp("?x", "c", "?y3")])
        assert classify_shape(bgp) == QueryShape.STAR
        assert diameter(bgp) == 2  # adjacency path through the hub

    def test_linear_shape(self):
        bgp = BGP([tp("?x", "p", "?y"), tp("?y", "q", "?z"), tp("?z", "r", "?w")])
        assert classify_shape(bgp) == QueryShape.LINEAR
        assert diameter(bgp) == 3

    def test_snowflake_shape(self):
        bgp = BGP(
            [
                tp("?x", "a", "?y1"),
                tp("?x", "b", "?y2"),
                tp("?x", "link", "?z"),
                tp("?z", "c", "?w1"),
                tp("?z", "d", "?w2"),
            ]
        )
        assert classify_shape(bgp) == QueryShape.SNOWFLAKE

    def test_single_pattern(self):
        bgp = BGP([tp("?x", "p", "?y")])
        assert classify_shape(bgp) == QueryShape.SINGLE
        assert diameter(bgp) == 1

    def test_disconnected(self):
        bgp = BGP([tp("?x", "p", "?y"), tp("?a", "q", "?b")])
        assert classify_shape(bgp) == QueryShape.DISCONNECTED

    def test_empty_bgp(self):
        assert diameter(BGP([])) == 0
        assert classify_shape(BGP([])) == QueryShape.DISCONNECTED

    def test_running_example_is_complex_cycle(self, query_q1):
        query = parse_query(query_q1)
        analysis = analyze_bgp(query.pattern)
        assert analysis.shape in (QueryShape.COMPLEX, QueryShape.LINEAR)
        assert analysis.is_connected
        assert len(analysis.join_variable_degrees) == 4

    def test_basic_templates_have_expected_shapes(self, small_dataset):
        from repro.watdiv.basic_queries import basic_template
        from repro.watdiv.template import instantiate_template

        star = parse_query(instantiate_template(basic_template("S1"), small_dataset))
        assert classify_shape(star.pattern) == QueryShape.STAR
        linear = parse_query(instantiate_template(basic_template("L4"), small_dataset))
        assert classify_shape(linear.pattern) in (QueryShape.LINEAR, QueryShape.STAR)

    def test_incremental_queries_are_linear(self, small_dataset):
        from repro.watdiv.incremental_queries import incremental_template
        from repro.watdiv.template import instantiate_template

        query = parse_query(instantiate_template(incremental_template("IL-3-7"), small_dataset))
        assert classify_shape(query.pattern) == QueryShape.LINEAR
        assert diameter(query.pattern) == 7
