"""Unit tests for triples and the in-memory graph."""

import pytest

from repro.rdf.graph import Graph
from repro.rdf.terms import IRI, Literal, Variable
from repro.rdf.triple import Triple


def t(s, p, o):
    return Triple(IRI(s), IRI(p), IRI(o))


class TestTriple:
    def test_basic_construction(self):
        triple = t("A", "follows", "B")
        assert triple.subject == IRI("A")
        assert triple.predicate == IRI("follows")
        assert triple.object == IRI("B")

    def test_literal_object_allowed(self):
        triple = Triple(IRI("A"), IRI("age"), Literal("25"))
        assert isinstance(triple.object, Literal)

    def test_literal_subject_rejected(self):
        with pytest.raises(TypeError):
            Triple(Literal("x"), IRI("p"), IRI("o"))

    def test_variable_rejected(self):
        with pytest.raises(TypeError):
            Triple(Variable("x"), IRI("p"), IRI("o"))

    def test_literal_predicate_rejected(self):
        with pytest.raises(TypeError):
            Triple(IRI("s"), Literal("p"), IRI("o"))

    def test_iteration_and_tuple(self):
        triple = t("A", "p", "B")
        assert list(triple) == [IRI("A"), IRI("p"), IRI("B")]
        assert triple.as_tuple() == (IRI("A"), IRI("p"), IRI("B"))

    def test_of_shorthand(self):
        triple = Triple.of("A", "follows", "B")
        assert triple == t("A", "follows", "B")

    def test_n3(self):
        assert t("A", "p", "B").n3() == "<A> <p> <B> ."


class TestGraph:
    def test_add_and_len(self, example_graph):
        assert len(example_graph) == 7

    def test_add_duplicate_ignored(self):
        graph = Graph()
        assert graph.add(t("A", "p", "B")) is True
        assert graph.add(t("A", "p", "B")) is False
        assert len(graph) == 1

    def test_discard(self):
        graph = Graph([t("A", "p", "B")])
        assert graph.discard(t("A", "p", "B")) is True
        assert graph.discard(t("A", "p", "B")) is False
        assert len(graph) == 0

    def test_contains(self, example_graph):
        assert t("A", "follows", "B") in example_graph
        assert t("A", "follows", "D") not in example_graph

    def test_predicates_sorted(self, example_graph):
        assert example_graph.predicates() == [IRI("follows"), IRI("likes")]

    def test_predicate_count(self, example_graph):
        assert example_graph.predicate_count(IRI("follows")) == 4
        assert example_graph.predicate_count(IRI("likes")) == 3
        assert example_graph.predicate_count(IRI("missing")) == 0

    def test_predicate_histogram(self, example_graph):
        histogram = example_graph.predicate_histogram()
        assert histogram[IRI("follows")] == 4
        assert histogram[IRI("likes")] == 3

    def test_triples_wildcard_match(self, example_graph):
        assert len(list(example_graph.triples())) == 7

    def test_triples_by_subject(self, example_graph):
        matches = list(example_graph.triples(subject=IRI("A")))
        assert len(matches) == 3

    def test_triples_by_predicate_and_object(self, example_graph):
        matches = list(example_graph.triples(predicate=IRI("likes"), object=IRI("I2")))
        assert {m.subject for m in matches} == {IRI("A"), IRI("C")}

    def test_triples_unknown_bound_value(self, example_graph):
        assert list(example_graph.triples(subject=IRI("nope"))) == []

    def test_subject_object_pairs(self, example_graph):
        pairs = set(example_graph.subject_object_pairs(IRI("likes")))
        assert pairs == {(IRI("A"), IRI("I1")), (IRI("A"), IRI("I2")), (IRI("C"), IRI("I2"))}

    def test_subjects_and_objects(self, example_graph):
        assert IRI("A") in example_graph.subjects()
        assert IRI("I1") in example_graph.objects()

    def test_union(self):
        left = Graph([t("A", "p", "B")])
        right = Graph([t("B", "p", "C")])
        merged = left.union(right)
        assert len(merged) == 2
        assert len(left) == 1

    def test_copy_and_equality(self, example_graph):
        clone = example_graph.copy()
        assert clone == example_graph
        clone.add(t("X", "p", "Y"))
        assert clone != example_graph
