"""Unit and property tests for N-Triples parsing and serialisation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdf.graph import Graph
from repro.rdf.ntriples import (
    NTriplesParseError,
    parse_literal,
    parse_ntriples,
    parse_ntriples_line,
    serialize_ntriples,
)
from repro.rdf.terms import IRI, BlankNode, Literal
from repro.rdf.triple import Triple


class TestParseLine:
    def test_simple_statement(self):
        triple = parse_ntriples_line("<http://a> <http://p> <http://b> .")
        assert triple == Triple(IRI("http://a"), IRI("http://p"), IRI("http://b"))

    def test_literal_object(self):
        triple = parse_ntriples_line('<a> <p> "hello world" .')
        assert triple.object == Literal("hello world")

    def test_typed_literal(self):
        triple = parse_ntriples_line('<a> <p> "5"^^<http://www.w3.org/2001/XMLSchema#integer> .')
        assert triple.object.to_python() == 5

    def test_language_literal(self):
        triple = parse_ntriples_line('<a> <p> "bonjour"@fr .')
        assert triple.object.language == "fr"

    def test_blank_node_subject(self):
        triple = parse_ntriples_line("_:b1 <p> <o> .")
        assert triple.subject == BlankNode("b1")

    def test_comment_returns_none(self):
        assert parse_ntriples_line("# a comment") is None

    def test_blank_line_returns_none(self):
        assert parse_ntriples_line("   ") is None

    def test_simplified_notation(self):
        triple = parse_ntriples_line("A follows B .")
        assert triple == Triple(IRI("A"), IRI("follows"), IRI("B"))

    def test_literal_with_escaped_quote(self):
        triple = parse_ntriples_line('<a> <p> "say \\"hi\\"" .')
        assert triple.object.lexical == 'say "hi"'

    def test_missing_term_raises(self):
        with pytest.raises(NTriplesParseError):
            parse_ntriples_line("<a> <p> .")

    def test_unterminated_iri_raises(self):
        with pytest.raises(NTriplesParseError):
            parse_ntriples_line("<a <p> <o> .")


class TestParseDocument:
    def test_multi_line_document(self):
        document = "<a> <p> <b> .\n# comment\n<b> <p> <c> .\n"
        graph = parse_ntriples(document)
        assert len(graph) == 2

    def test_duplicates_collapse(self):
        graph = parse_ntriples("<a> <p> <b> .\n<a> <p> <b> .")
        assert len(graph) == 1

    def test_round_trip(self, example_graph):
        document = serialize_ntriples(example_graph)
        parsed = parse_ntriples(document)
        assert parsed == example_graph

    def test_serialize_deterministic(self, example_graph):
        assert serialize_ntriples(example_graph) == serialize_ntriples(example_graph.copy())

    def test_empty_graph_serialisation(self):
        assert serialize_ntriples(Graph()) == ""


class TestParseLiteral:
    def test_plain(self):
        assert parse_literal('"x"') == Literal("x")

    def test_malformed(self):
        with pytest.raises(NTriplesParseError):
            parse_literal('"unterminated')


_iri_text = st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789/._-", min_size=1, max_size=20)
_literal_text = st.text(
    alphabet=st.characters(blacklist_categories=("Cs", "Cc")), min_size=0, max_size=30
)


@st.composite
def triples(draw):
    subject = IRI("http://ex.org/" + draw(_iri_text))
    predicate = IRI("http://ex.org/p/" + draw(_iri_text))
    if draw(st.booleans()):
        object_ = IRI("http://ex.org/" + draw(_iri_text))
    else:
        object_ = Literal(draw(_literal_text))
    return Triple(subject, predicate, object_)


class TestRoundTripProperties:
    @given(st.lists(triples(), max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_serialize_parse_round_trip(self, triple_list):
        graph = Graph(triple_list)
        recovered = parse_ntriples(serialize_ntriples(graph))
        assert recovered == graph
