"""Unit tests for RDF term types."""

import pytest

from repro.rdf.terms import (
    IRI,
    BlankNode,
    Literal,
    Variable,
    XSD_BOOLEAN,
    XSD_DOUBLE,
    XSD_INTEGER,
    term_from_string,
)


class TestIRI:
    def test_n3_syntax(self):
        assert IRI("http://example.org/x").n3() == "<http://example.org/x>"

    def test_equality_and_hash(self):
        assert IRI("a") == IRI("a")
        assert IRI("a") != IRI("b")
        assert len({IRI("a"), IRI("a"), IRI("b")}) == 2

    def test_local_name_hash_fragment(self):
        assert IRI("http://example.org/ns#Person").local_name() == "Person"

    def test_local_name_path_segment(self):
        assert IRI("http://db.uwaterloo.ca/~galuc/wsdbm/User7").local_name() == "User7"

    def test_is_bound(self):
        assert IRI("a").is_bound
        assert not IRI("a").is_variable


class TestLiteral:
    def test_plain_literal_n3(self):
        assert Literal("hello").n3() == '"hello"'

    def test_typed_literal_n3(self):
        rendered = Literal("5", datatype=XSD_INTEGER).n3()
        assert rendered == f'"5"^^<{XSD_INTEGER}>'

    def test_language_tagged_n3(self):
        assert Literal("hallo", language="de").n3() == '"hallo"@de'

    def test_datatype_and_language_conflict(self):
        with pytest.raises(ValueError):
            Literal("x", datatype=XSD_INTEGER, language="en")

    def test_escaping_in_n3(self):
        assert Literal('say "hi"').n3() == '"say \\"hi\\""'

    def test_to_python_integer(self):
        assert Literal("42", datatype=XSD_INTEGER).to_python() == 42

    def test_to_python_double(self):
        assert Literal("1.5", datatype=XSD_DOUBLE).to_python() == pytest.approx(1.5)

    def test_to_python_boolean(self):
        assert Literal("true", datatype=XSD_BOOLEAN).to_python() is True
        assert Literal("false", datatype=XSD_BOOLEAN).to_python() is False

    def test_from_python_round_trip(self):
        assert Literal.from_python(7).to_python() == 7
        assert Literal.from_python(True).to_python() is True
        assert Literal.from_python("text").to_python() == "text"

    def test_is_numeric(self):
        assert Literal("1", datatype=XSD_INTEGER).is_numeric
        assert not Literal("1").is_numeric


class TestVariable:
    def test_strips_question_mark(self):
        assert Variable("?x").name == "x"
        assert Variable("x").name == "x"

    def test_dollar_prefix(self):
        assert Variable("$y").name == "y"

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Variable("?")

    def test_is_variable_flag(self):
        assert Variable("x").is_variable
        assert not Variable("x").is_bound

    def test_n3(self):
        assert Variable("v0").n3() == "?v0"


class TestBlankNode:
    def test_n3(self):
        assert BlankNode("b1").n3() == "_:b1"

    def test_equality(self):
        assert BlankNode("b") == BlankNode("b")
        assert BlankNode("b") != BlankNode("c")


class TestTermFromString:
    def test_variable(self):
        assert term_from_string("?x") == Variable("x")

    def test_full_iri(self):
        assert term_from_string("<http://ex.org/a>") == IRI("http://ex.org/a")

    def test_blank_node(self):
        assert term_from_string("_:n1") == BlankNode("n1")

    def test_plain_literal(self):
        assert term_from_string('"abc"') == Literal("abc")

    def test_bare_name_is_iri(self):
        assert term_from_string("follows") == IRI("follows")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            term_from_string("   ")
