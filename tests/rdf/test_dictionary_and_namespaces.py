"""Unit tests for dictionary encoding and namespace handling."""

import pytest

from repro.rdf.dictionary import TermDictionary
from repro.rdf.namespaces import Namespace, NamespaceManager, WATDIV_NAMESPACES
from repro.rdf.terms import IRI, Literal


class TestTermDictionary:
    def test_encode_assigns_dense_ids(self):
        dictionary = TermDictionary()
        assert dictionary.encode(IRI("a")) == 0
        assert dictionary.encode(IRI("b")) == 1
        assert dictionary.encode(IRI("a")) == 0
        assert len(dictionary) == 2

    def test_decode_round_trip(self):
        dictionary = TermDictionary()
        term = Literal("hello")
        term_id = dictionary.encode(term)
        assert dictionary.decode(term_id) == term

    def test_decode_unknown_id(self):
        with pytest.raises(KeyError):
            TermDictionary().decode(3)

    def test_decode_negative_id_rejected(self):
        """Regression: -1 must not alias the last term via list indexing."""
        dictionary = TermDictionary()
        dictionary.encode(IRI("a"))
        dictionary.encode(IRI("b"))
        with pytest.raises(KeyError):
            dictionary.decode(-1)
        with pytest.raises(KeyError):
            dictionary.decode(-2)
        with pytest.raises(KeyError):
            dictionary.decode(len(dictionary))

    def test_lookup_without_insert(self):
        dictionary = TermDictionary()
        assert dictionary.lookup(IRI("a")) is None
        dictionary.encode(IRI("a"))
        assert dictionary.lookup(IRI("a")) == 0

    def test_contains(self):
        dictionary = TermDictionary()
        dictionary.encode(IRI("a"))
        assert IRI("a") in dictionary
        assert IRI("b") not in dictionary

    def test_encode_triple_round_trip(self, example_graph):
        dictionary = TermDictionary()
        triple = next(iter(example_graph))
        encoded = dictionary.encode_triple(triple)
        assert dictionary.decode_triple(encoded) == triple

    def test_from_graph_covers_all_terms(self, example_graph):
        dictionary = TermDictionary.from_graph(example_graph)
        for triple in example_graph:
            assert triple.subject in dictionary
            assert triple.predicate in dictionary
            assert triple.object in dictionary

    def test_average_term_length(self):
        dictionary = TermDictionary.from_terms([IRI("ab"), IRI("abcd")])
        # n3 adds the angle brackets: <ab> is 4 chars, <abcd> is 6.
        assert dictionary.average_term_length() == pytest.approx(5.0)

    def test_empty_dictionary_average(self):
        assert TermDictionary().average_term_length() == 0.0


class TestNamespace:
    def test_term_building(self):
        ns = Namespace("ex", "http://example.org/")
        assert ns.term("Thing") == IRI("http://example.org/Thing")
        assert ns["Thing"] == IRI("http://example.org/Thing")


class TestNamespaceManager:
    def test_expand_known_prefix(self):
        manager = NamespaceManager()
        assert manager.expand("wsdbm:User0") == IRI(WATDIV_NAMESPACES["wsdbm"] + "User0")

    def test_expand_unknown_prefix(self):
        with pytest.raises(KeyError):
            NamespaceManager().expand("nope:User0")

    def test_expand_without_colon(self):
        with pytest.raises(ValueError):
            NamespaceManager().expand("User0")

    def test_try_expand_returns_none(self):
        assert NamespaceManager().try_expand("nope:x") is None

    def test_compact_round_trip(self):
        manager = NamespaceManager()
        iri = manager.expand("sorg:email")
        assert manager.compact(iri) == "sorg:email"

    def test_compact_unknown_base(self):
        manager = NamespaceManager()
        assert manager.compact(IRI("urn:something")) == "<urn:something>"

    def test_bind_new_prefix(self):
        manager = NamespaceManager()
        manager.bind("ex", "http://example.org/")
        assert manager.expand("ex:a") == IRI("http://example.org/a")
        assert manager.compact(IRI("http://example.org/a")) == "ex:a"

    def test_namespace_accessor(self):
        manager = NamespaceManager()
        assert manager.namespace("gr").base == WATDIV_NAMESPACES["gr"]
        with pytest.raises(KeyError):
            manager.namespace("unknown")

    def test_watdiv_prefixes_present(self):
        prefixes = NamespaceManager().namespaces()
        for prefix in ("wsdbm", "sorg", "gr", "rev", "foaf", "og", "mo", "gn", "dc", "rdf"):
            assert prefix in prefixes
