"""Unit tests for the triples table, VP and property table layouts."""

import pytest

from repro.mappings.naming import PROPERTY_TABLE, predicate_key, triples_table_name, vp_table_name
from repro.mappings.property_table import PropertyTableLayout
from repro.mappings.triples_table import TriplesTableLayout
from repro.mappings.vertical import VerticalPartitioningLayout
from repro.rdf.namespaces import NamespaceManager, WATDIV_NAMESPACES
from repro.rdf.terms import IRI


class TestNaming:
    def test_predicate_key_compacts_namespace(self):
        key = predicate_key(IRI(WATDIV_NAMESPACES["wsdbm"] + "follows"))
        assert key == "wsdbm_follows"

    def test_predicate_key_unknown_namespace(self):
        assert predicate_key(IRI("urn:my-predicate")) == "my_predicate"

    def test_vp_table_name(self):
        name = vp_table_name(IRI(WATDIV_NAMESPACES["sorg"] + "email"))
        assert name == "vp_sorg_email"

    def test_triples_table_name(self):
        assert triples_table_name() == "triples"


class TestTriplesTableLayout:
    def test_build(self, example_graph):
        layout = TriplesTableLayout()
        report = layout.build(example_graph)
        assert report.tuple_count == len(example_graph)
        assert report.table_count == 1
        assert len(layout.table()) == 7
        assert report.hdfs_bytes > 0


class TestVerticalPartitioningLayout:
    def test_one_table_per_predicate(self, example_graph):
        layout = VerticalPartitioningLayout()
        report = layout.build(example_graph)
        assert report.table_count == 2
        assert layout.size(IRI("follows")) == 4
        assert layout.size(IRI("likes")) == 3
        assert report.tuple_count == 7

    def test_vp_tables_have_subject_object_schema(self, example_graph):
        layout = VerticalPartitioningLayout()
        layout.build(example_graph)
        assert layout.table(IRI("follows")).columns == ("s", "o")

    def test_missing_predicate_gives_empty_relation(self, example_graph):
        layout = VerticalPartitioningLayout()
        layout.build(example_graph)
        assert len(layout.table(IRI("missing"))) == 0
        assert layout.table_name(IRI("missing")) is None

    def test_triples_table_kept_for_unbound_predicates(self, example_graph):
        layout = VerticalPartitioningLayout()
        layout.build(example_graph)
        assert triples_table_name() in layout.catalog

    def test_total_tuples_matches_graph(self, small_graph):
        layout = VerticalPartitioningLayout()
        layout.build(small_graph)
        assert layout.total_tuples() == len(small_graph)

    def test_vp_content_matches_graph(self, example_graph):
        layout = VerticalPartitioningLayout()
        layout.build(example_graph)
        pairs = set(map(tuple, layout.table(IRI("likes")).rows))
        assert pairs == set(example_graph.subject_object_pairs(IRI("likes")))


class TestPropertyTableLayout:
    def test_columns_cover_all_predicates(self, example_graph):
        layout = PropertyTableLayout()
        layout.build(example_graph)
        assert set(layout.columns) == {"s", "follows", "likes"}

    def test_row_duplication_for_multi_valued(self, example_graph):
        layout = PropertyTableLayout()
        layout.build(example_graph)
        table = layout.table()
        a_rows = [row for row in table.to_dicts() if row["s"] == IRI("A")]
        # A has 1 follows value and 2 likes values -> 2 rows (Table 1 of the paper).
        assert len(a_rows) == 2
        assert {row["likes"] for row in a_rows} == {IRI("I1"), IRI("I2")}
        assert all(row["follows"] == IRI("B") for row in a_rows)

    def test_multi_valued_detection(self, example_graph):
        layout = PropertyTableLayout()
        layout.build(example_graph)
        assert layout.is_multi_valued(IRI("follows"))  # B follows C and D
        assert layout.is_multi_valued(IRI("likes"))  # A likes I1 and I2

    def test_every_triple_represented(self, example_graph):
        layout = PropertyTableLayout()
        layout.build(example_graph)
        table = layout.table()
        for triple in example_graph:
            column = layout.column_for(triple.predicate)
            values = {
                row[column]
                for row in table.to_dicts()
                if row["s"] == triple.subject and row[column] is not None
            }
            assert triple.object in values

    def test_column_for_unknown_predicate(self, example_graph):
        layout = PropertyTableLayout()
        layout.build(example_graph)
        assert layout.column_for(IRI("nope")) is None

    def test_registered_in_catalog_and_hdfs(self, example_graph):
        layout = PropertyTableLayout()
        report = layout.build(example_graph)
        assert PROPERTY_TABLE in layout.catalog
        assert report.hdfs_bytes > 0
