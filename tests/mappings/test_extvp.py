"""Unit and property tests for the ExtVP layout (the paper's contribution)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.relation import Relation
from repro.mappings.extvp import CorrelationKind, ExtVPLayout
from repro.rdf.graph import Graph
from repro.rdf.terms import IRI
from repro.rdf.triple import Triple


def build_layout(graph, **kwargs):
    layout = ExtVPLayout(**kwargs)
    layout.build(graph)
    return layout


class TestExtVPOnRunningExample:
    """Fig. 10 of the paper enumerates every ExtVP table of graph G1."""

    @pytest.fixture(scope="class")
    def layout(self, example_graph):
        return build_layout(example_graph)

    def test_os_follows_follows(self, layout):
        info = layout.extvp_info(CorrelationKind.OS, IRI("follows"), IRI("follows"))
        assert info.row_count == 2  # (A,B), (B,C)
        assert info.selectivity == pytest.approx(0.5)
        assert info.materialized

    def test_os_follows_likes(self, layout):
        info = layout.extvp_info(CorrelationKind.OS, IRI("follows"), IRI("likes"))
        assert info.row_count == 1  # (B,C)
        assert info.selectivity == pytest.approx(0.25)

    def test_so_follows_follows(self, layout):
        info = layout.extvp_info(CorrelationKind.SO, IRI("follows"), IRI("follows"))
        assert info.row_count == 3  # (B,C), (B,D), (C,D)
        assert info.selectivity == pytest.approx(0.75)

    def test_so_follows_likes_empty(self, layout):
        info = layout.extvp_info(CorrelationKind.SO, IRI("follows"), IRI("likes"))
        assert info.is_empty
        assert not info.materialized

    def test_ss_follows_likes(self, layout):
        info = layout.extvp_info(CorrelationKind.SS, IRI("follows"), IRI("likes"))
        assert info.row_count == 2  # (A,B), (C,D)
        assert info.selectivity == pytest.approx(0.5)

    def test_os_likes_follows_empty(self, layout):
        info = layout.extvp_info(CorrelationKind.OS, IRI("likes"), IRI("follows"))
        assert info.is_empty

    def test_so_likes_follows(self, layout):
        info = layout.extvp_info(CorrelationKind.SO, IRI("likes"), IRI("follows"))
        assert info.row_count == 1  # (C,I2)
        assert info.selectivity == pytest.approx(1 / 3)

    def test_ss_likes_follows_equal_to_vp_not_stored(self, layout):
        info = layout.extvp_info(CorrelationKind.SS, IRI("likes"), IRI("follows"))
        assert info.row_count == 3
        assert info.selectivity == pytest.approx(1.0)
        assert not info.materialized  # SF = 1 tables are not stored (Fig. 10, red)

    def test_ss_self_correlation_not_built(self, layout):
        assert layout.extvp_info(CorrelationKind.SS, IRI("follows"), IRI("follows")) is None

    def test_oo_not_built_by_default(self, layout):
        assert layout.extvp_info(CorrelationKind.OO, IRI("follows"), IRI("likes")) is None

    def test_materialized_table_contents(self, layout):
        name = layout.extvp_info(CorrelationKind.OS, IRI("follows"), IRI("likes")).name
        table = layout.catalog.table(name)
        assert set(map(tuple, table.rows)) == {(IRI("B"), IRI("C"))}

    def test_vp_tables_still_available(self, layout):
        assert layout.vp_size(IRI("follows")) == 4
        assert layout.vp_size(IRI("likes")) == 3


class TestSelectivityThreshold:
    def test_threshold_limits_materialization(self, example_graph):
        full = build_layout(example_graph, selectivity_threshold=1.0)
        limited = build_layout(example_graph, selectivity_threshold=0.3)
        assert len(limited.statistics.materialized()) < len(full.statistics.materialized())
        # Only tables with SF < 0.3 survive.
        assert all(info.selectivity < 0.3 for info in limited.statistics.materialized())

    def test_threshold_zero_disables_extvp(self, example_graph):
        layout = build_layout(example_graph, selectivity_threshold=0.0)
        assert layout.statistics.materialized() == []
        # Statistics are still collected for the compiler.
        assert len(layout.statistics) > 0

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            ExtVPLayout(selectivity_threshold=1.5)

    def test_statistics_survive_for_unmaterialized_tables(self, example_graph):
        layout = build_layout(example_graph, selectivity_threshold=0.3)
        info = layout.extvp_info(CorrelationKind.SO, IRI("follows"), IRI("follows"))
        assert info is not None
        assert not info.materialized
        assert info.selectivity == pytest.approx(0.75)


class TestOOAblation:
    def test_oo_built_when_requested(self, example_graph):
        layout = build_layout(example_graph, include_oo=True)
        info = layout.extvp_info(CorrelationKind.OO, IRI("follows"), IRI("likes"))
        assert info is not None

    def test_oo_self_join_is_trivial(self, example_graph):
        layout = build_layout(example_graph, include_oo=True)
        info = layout.extvp_info(CorrelationKind.OO, IRI("follows"), IRI("follows"))
        # Semi-joining a table with itself on o=o returns the table (SF = 1).
        assert info.selectivity == pytest.approx(1.0)
        assert not info.materialized


class TestTable2Accounting:
    def test_size_summary(self, example_graph):
        layout = build_layout(example_graph)
        summary = layout.size_summary()
        assert summary["vp_tuples"] == 7
        assert summary["total_tuples"] == summary["vp_tuples"] + summary["extvp_tuples"]
        assert summary["hdfs_bytes"] > 0

    def test_table_counts(self, example_graph):
        layout = build_layout(example_graph)
        counts = layout.table_counts()
        assert counts["vp"] == 2
        assert counts["total"] == counts["vp"] + counts["extvp"]


# --------------------------------------------------------------------------- #
# Property-based invariants on random graphs
# --------------------------------------------------------------------------- #
_node = st.integers(min_value=0, max_value=8).map(lambda i: IRI(f"n{i}"))
_predicate = st.sampled_from([IRI("p"), IRI("q"), IRI("r")])
_graphs = st.lists(st.tuples(_node, _predicate, _node), min_size=1, max_size=40).map(
    lambda triples: Graph(Triple(s, p, o) for s, p, o in triples)
)

_KIND_COLUMNS = {
    CorrelationKind.SS: ("s", "s"),
    CorrelationKind.OS: ("o", "s"),
    CorrelationKind.SO: ("s", "o"),
}


class TestExtVPProperties:
    @given(graph=_graphs)
    @settings(max_examples=40, deadline=None)
    def test_extvp_tables_are_semijoin_reductions(self, graph):
        """Every materialised ExtVP table equals VP_p1 ⋉ VP_p2 on the right columns."""
        layout = build_layout(graph)
        for info in layout.statistics.materialized():
            vp_first = layout.vp.table(info.first)
            vp_second = layout.vp.table(info.second)
            left_column, right_column = _KIND_COLUMNS[info.kind]
            expected = vp_first.semi_join(vp_second, on=[(left_column, right_column)])
            actual = layout.catalog.table(info.name)
            assert sorted(map(repr, actual.rows)) == sorted(map(repr, expected.rows))

    @given(graph=_graphs)
    @settings(max_examples=40, deadline=None)
    def test_extvp_subset_of_vp_and_sf_bounds(self, graph):
        layout = build_layout(graph)
        for info in layout.statistics.tables.values():
            assert 0.0 <= info.selectivity <= 1.0
            assert info.row_count <= info.vp_row_count
            if info.materialized:
                table = layout.catalog.table(info.name)
                vp_rows = set(layout.vp.table(info.first).rows)
                assert set(table.rows) <= vp_rows

    @given(graph=_graphs, threshold=st.sampled_from([0.25, 0.5, 0.75]))
    @settings(max_examples=30, deadline=None)
    def test_threshold_monotone_in_storage(self, graph, threshold):
        """A smaller threshold never stores more tuples than a larger one."""
        limited = build_layout(graph, selectivity_threshold=threshold)
        full = build_layout(graph, selectivity_threshold=1.0)
        assert limited.statistics.total_materialized_tuples() <= full.statistics.total_materialized_tuples()


class TestBuildReportAlwaysPopulated:
    def test_report_set_on_success(self, example_graph):
        layout = build_layout(example_graph)
        assert layout.report is not None
        assert layout.report.build_seconds > 0.0
        assert layout.report.table_count > 0

    def test_report_set_on_empty_graph(self):
        layout = build_layout(Graph([]))
        assert layout.report is not None
        assert layout.report.table_count == 0
        assert layout.report.build_seconds > 0.0

    def test_report_set_even_when_build_fails(self, example_graph, monkeypatch):
        layout = ExtVPLayout()

        def boom(*args, **kwargs):
            raise RuntimeError("simulated semi-join failure")

        monkeypatch.setattr(ExtVPLayout, "_semi_join", staticmethod(boom))
        with pytest.raises(RuntimeError, match="simulated"):
            layout.build(example_graph)
        # The Table 2 benchmark must never silently read zeros: the report is
        # populated from whatever state the build reached.
        assert layout.report is not None
        assert layout.report.build_seconds > 0.0
        assert layout.report.table_count == layout.vp.report.table_count
